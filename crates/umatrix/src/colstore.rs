//! An external-memory, column-oriented store for transition probability
//! matrices.
//!
//! The paper's Baseline algorithm keeps each k-step transition probability
//! matrix `W(k)` on disk because `W(k)` is not sparse for k > 1: *"we store
//! the elements of W(k) column-by-column in consecutive blocks on disk.  Let B
//! be the size of a disk block.  Reading a column requires O(|V(G)|/B) I/O's"*
//! (Section VI-A).  [`ColumnStore`] reproduces that layout: a fixed-size
//! header followed by `num_cols` columns of `num_rows` little-endian `f64`
//! values each, and it counts logical block I/Os so the experiment harness can
//! report the I/O costs the paper reasons about.
//!
//! The store is thread-safe: reads and writes lock an internal mutex around
//! the file handle, so a store can be shared by the parallel experiment
//! driver.

use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: u64 = 0x5553_494d_434f_4c31; // "USIMCOL1"
const HEADER_LEN: u64 = 8 * 4; // magic, num_rows, num_cols, block_size

/// Counters of the logical I/O performed by a [`ColumnStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of columns read.
    pub columns_read: u64,
    /// Number of columns written.
    pub columns_written: u64,
    /// Number of logical blocks read (`ceil(column_bytes / block_size)` per
    /// column read).
    pub blocks_read: u64,
    /// Number of logical blocks written.
    pub blocks_written: u64,
}

/// A column-oriented on-disk matrix of `f64`.
pub struct ColumnStore {
    path: PathBuf,
    file: Mutex<File>,
    num_rows: usize,
    num_cols: usize,
    block_size: usize,
    columns_read: AtomicU64,
    columns_written: AtomicU64,
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
}

impl ColumnStore {
    /// Creates a new store at `path` for a `num_rows × num_cols` matrix, using
    /// logical blocks of `block_size` bytes for the I/O accounting.  Any
    /// existing file at `path` is truncated.  Unwritten columns read back as
    /// zeros.
    pub fn create<P: AsRef<Path>>(
        path: P,
        num_rows: usize,
        num_cols: usize,
        block_size: usize,
    ) -> io::Result<Self> {
        assert!(block_size > 0, "block_size must be positive");
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = BytesMut::with_capacity(HEADER_LEN as usize);
        header.put_u64_le(MAGIC);
        header.put_u64_le(num_rows as u64);
        header.put_u64_le(num_cols as u64);
        header.put_u64_le(block_size as u64);
        file.write_all(&header)?;
        // Pre-size the file so unwritten columns read back as zeros.
        let total = HEADER_LEN + (num_rows * num_cols * 8) as u64;
        file.set_len(total)?;
        Ok(ColumnStore {
            path,
            file: Mutex::new(file),
            num_rows,
            num_cols,
            block_size,
            columns_read: AtomicU64::new(0),
            columns_written: AtomicU64::new(0),
            blocks_read: AtomicU64::new(0),
            blocks_written: AtomicU64::new(0),
        })
    }

    /// Opens an existing store created by [`ColumnStore::create`].
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut header = vec![0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        let mut buf = &header[..];
        let magic = buf.get_u64_le();
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a ColumnStore file (bad magic)",
            ));
        }
        let num_rows = buf.get_u64_le() as usize;
        let num_cols = buf.get_u64_le() as usize;
        let block_size = buf.get_u64_le() as usize;
        Ok(ColumnStore {
            path,
            file: Mutex::new(file),
            num_rows,
            num_cols,
            block_size,
            columns_read: AtomicU64::new(0),
            columns_written: AtomicU64::new(0),
            blocks_read: AtomicU64::new(0),
            blocks_written: AtomicU64::new(0),
        })
    }

    /// Number of rows of the stored matrix.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns of the stored matrix.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Logical block size in bytes used for I/O accounting.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn column_offset(&self, col: usize) -> u64 {
        HEADER_LEN + (col * self.num_rows * 8) as u64
    }

    fn blocks_per_column(&self) -> u64 {
        (self.num_rows * 8).div_ceil(self.block_size) as u64
    }

    /// Writes column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_rows` or `col >= num_cols`.
    pub fn write_column(&self, col: usize, values: &[f64]) -> io::Result<()> {
        assert!(col < self.num_cols, "column {col} out of range");
        assert_eq!(values.len(), self.num_rows, "column length mismatch");
        let mut buf = BytesMut::with_capacity(values.len() * 8);
        for &v in values {
            buf.put_f64_le(v);
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(self.column_offset(col)))?;
        file.write_all(&buf)?;
        self.columns_written.fetch_add(1, Ordering::Relaxed);
        self.blocks_written
            .fetch_add(self.blocks_per_column(), Ordering::Relaxed);
        Ok(())
    }

    /// Reads column `col` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != num_rows` or `col >= num_cols`.
    pub fn read_column(&self, col: usize, out: &mut [f64]) -> io::Result<()> {
        assert!(col < self.num_cols, "column {col} out of range");
        assert_eq!(out.len(), self.num_rows, "column length mismatch");
        let mut raw = vec![0u8; self.num_rows * 8];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(self.column_offset(col)))?;
            file.read_exact(&mut raw)?;
        }
        let mut buf = &raw[..];
        for slot in out.iter_mut() {
            *slot = buf.get_f64_le();
        }
        self.columns_read.fetch_add(1, Ordering::Relaxed);
        self.blocks_read
            .fetch_add(self.blocks_per_column(), Ordering::Relaxed);
        Ok(())
    }

    /// Reads column `col` into a freshly allocated vector.
    pub fn read_column_vec(&self, col: usize) -> io::Result<Vec<f64>> {
        let mut out = vec![0.0; self.num_rows];
        self.read_column(col, &mut out)?;
        Ok(out)
    }

    /// Writes an entire dense matrix (whose columns are `matrix.cols()`) to
    /// the store.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not match.
    pub fn write_dense(&self, matrix: &crate::DenseMatrix) -> io::Result<()> {
        assert_eq!(matrix.rows(), self.num_rows, "row count mismatch");
        assert_eq!(matrix.cols(), self.num_cols, "column count mismatch");
        let mut col = vec![0.0; self.num_rows];
        for j in 0..self.num_cols {
            matrix.copy_column_into(j, &mut col);
            self.write_column(j, &col)?;
        }
        Ok(())
    }

    /// Reads the entire store back as a dense matrix.
    pub fn read_dense(&self) -> io::Result<crate::DenseMatrix> {
        let mut out = crate::DenseMatrix::zeros(self.num_rows, self.num_cols);
        let mut col = vec![0.0; self.num_rows];
        for j in 0..self.num_cols {
            self.read_column(j, &mut col)?;
            for i in 0..self.num_rows {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Snapshot of the I/O counters.
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            columns_read: self.columns_read.load(Ordering::Relaxed),
            columns_written: self.columns_written.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
        }
    }

    /// Resets the I/O counters to zero.
    pub fn reset_io_stats(&self) {
        self.columns_read.store(0, Ordering::Relaxed);
        self.columns_written.store(0, Ordering::Relaxed);
        self.blocks_read.store(0, Ordering::Relaxed);
        self.blocks_written.store(0, Ordering::Relaxed);
    }

    /// Deletes the backing file.  The store must not be used afterwards.
    pub fn delete(self) -> io::Result<()> {
        drop(self.file);
        std::fs::remove_file(&self.path)
    }
}

impl std::fmt::Debug for ColumnStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnStore")
            .field("path", &self.path)
            .field("num_rows", &self.num_rows)
            .field("num_cols", &self.num_cols)
            .field("block_size", &self.block_size)
            .field("io", &self.io_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMatrix;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("umatrix_colstore_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.col", std::process::id()))
    }

    #[test]
    fn write_and_read_columns() {
        let path = temp_path("write_read");
        let store = ColumnStore::create(&path, 4, 3, 4096).unwrap();
        store.write_column(0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        store.write_column(2, &[-1.0, 0.5, 0.25, 0.0]).unwrap();

        assert_eq!(store.read_column_vec(0).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        // Unwritten column reads back as zeros.
        assert_eq!(store.read_column_vec(1).unwrap(), vec![0.0; 4]);
        assert_eq!(
            store.read_column_vec(2).unwrap(),
            vec![-1.0, 0.5, 0.25, 0.0]
        );
        store.delete().unwrap();
    }

    #[test]
    fn io_stats_count_blocks() {
        let path = temp_path("io_stats");
        // 10 rows * 8 bytes = 80 bytes per column; block size 32 -> 3 blocks.
        let store = ColumnStore::create(&path, 10, 2, 32).unwrap();
        let col = vec![1.0; 10];
        store.write_column(0, &col).unwrap();
        store.write_column(1, &col).unwrap();
        let mut out = vec![0.0; 10];
        store.read_column(0, &mut out).unwrap();

        let stats = store.io_stats();
        assert_eq!(stats.columns_written, 2);
        assert_eq!(stats.columns_read, 1);
        assert_eq!(stats.blocks_written, 6);
        assert_eq!(stats.blocks_read, 3);

        store.reset_io_stats();
        assert_eq!(store.io_stats(), IoStats::default());
        store.delete().unwrap();
    }

    #[test]
    fn dense_roundtrip() {
        let path = temp_path("dense_roundtrip");
        let m = DenseMatrix::from_fn(5, 4, |i, j| (i * 7 + j) as f64 * 0.125);
        let store = ColumnStore::create(&path, 5, 4, 4096).unwrap();
        store.write_dense(&m).unwrap();
        let back = store.read_dense().unwrap();
        assert!(m.max_abs_diff(&back) < 1e-15);
        store.delete().unwrap();
    }

    #[test]
    fn reopen_preserves_shape_and_data() {
        let path = temp_path("reopen");
        {
            let store = ColumnStore::create(&path, 3, 2, 1024).unwrap();
            store.write_column(1, &[9.0, 8.0, 7.0]).unwrap();
        }
        let store = ColumnStore::open(&path).unwrap();
        assert_eq!(store.num_rows(), 3);
        assert_eq!(store.num_cols(), 2);
        assert_eq!(store.block_size(), 1024);
        assert_eq!(store.read_column_vec(1).unwrap(), vec![9.0, 8.0, 7.0]);
        store.delete().unwrap();
    }

    #[test]
    fn open_rejects_non_store_files() {
        let path = temp_path("bad_magic");
        std::fs::write(&path, vec![0u8; 64]).unwrap();
        let err = ColumnStore::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn write_column_checks_length() {
        let path = temp_path("bad_len");
        let store = ColumnStore::create(&path, 4, 1, 4096).unwrap();
        let _ = store.write_column(0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_column_checks_range() {
        let path = temp_path("bad_col");
        let store = ColumnStore::create(&path, 2, 1, 4096).unwrap();
        let _ = store.write_column(5, &[1.0, 2.0]);
    }
}
