//! Row-major dense `f64` matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f64`.
///
/// Used for the k-step transition probability matrices `W(k)` of small and
/// medium graphs (they fill in quickly as `k` grows, so a sparse
/// representation stops paying off) and for SimRank similarity matrices of
/// deterministic graphs.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows * cols");
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `i`-th row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The `i`-th row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies the `j`-th column into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.rows()`.
    pub fn copy_column_into(&self, j: usize, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.rows,
            "output slice must have `rows` elements"
        );
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.data[i * self.cols + j];
        }
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not compatible.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop walking contiguous rows of
        // `other` and `out`, which is cache-friendly for row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for j in 0..other.cols {
                    out_row[j] += a * other_row[j];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// `Aᵀ · A` restricted to its diagonal-free use in SimRank is not needed;
    /// this computes the full `selfᵀ * self` product.
    pub fn gram(&self) -> DenseMatrix {
        self.transpose().matmul(self)
    }

    /// Dot product of rows `i` and `j` (`Σ_w self[i][w] * self[j][w]`).
    ///
    /// This is exactly the "two walks meet after k steps" probability
    /// `Σ_w Pr(u →ₖ w) Pr(v →ₖ w)` when the matrix is `W(k)`.
    pub fn row_dot(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (self.row(i), self.row(j));
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Maximum absolute difference between two matrices of the same shape.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Adds `factor * other` to `self` in place.
    pub fn add_scaled(&mut self, other: &DenseMatrix, factor: f64) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += factor * b;
        }
    }

    /// Sum of each row (useful to check sub-stochasticity of `W(k)`).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_identity_and_indexing() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert_eq!(z[(1, 2)], 0.0);

        let i = DenseMatrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.row(1), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn from_fn_and_from_rows_agree() {
        let a = DenseMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let b = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_rows_checks_length() {
        let _ = DenseMatrix::from_rows(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_small_example() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = DenseMatrix::from_fn(4, 4, |i, j| (i + 3 * j) as f64 * 0.25);
        let i = DenseMatrix::identity(4);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-12);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = a.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t[(4, 2)], a[(2, 4)]);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn row_dot_matches_manual_sum() {
        let a = DenseMatrix::from_rows(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let expected = 0.1 * 0.4 + 0.2 * 0.5 + 0.3 * 0.6;
        assert!((a.row_dot(0, 1) - expected).abs() < 1e-12);
        assert!((a.row_dot(0, 0) - (0.01 + 0.04 + 0.09)).abs() < 1e-12);
    }

    #[test]
    fn column_copy() {
        let a = DenseMatrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut col = vec![0.0; 3];
        a.copy_column_into(1, &mut col);
        assert_eq!(col, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn scale_add_scaled_row_sums() {
        let mut a = DenseMatrix::from_rows(2, 2, vec![1.0, 1.0, 2.0, 2.0]);
        let b = DenseMatrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        a.scale(2.0);
        a.add_scaled(&b, 3.0);
        assert_eq!(a.as_slice(), &[5.0, 2.0, 4.0, 7.0]);
        assert_eq!(a.row_sums(), vec![7.0, 11.0]);
    }

    #[test]
    fn gram_is_transpose_times_self() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let g = a.gram();
        // A^T A = [[10, 14], [14, 20]]
        assert_eq!(g[(0, 0)], 10.0);
        assert_eq!(g[(0, 1)], 14.0);
        assert_eq!(g[(1, 0)], 14.0);
        assert_eq!(g[(1, 1)], 20.0);
    }

    #[test]
    fn debug_format_is_bounded() {
        let a = DenseMatrix::zeros(20, 2);
        let s = format!("{a:?}");
        assert!(s.contains("more rows"));
    }
}
