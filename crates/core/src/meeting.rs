//! Meeting probabilities and their combination into SimRank scores.
//!
//! All four estimators of the paper reduce SimRank to the *meeting
//! probabilities*
//!
//! ```text
//! m(k)(u, v) = Σ_w Pr_G(u →ₖ w) · Pr_G(v →ₖ w),      k = 0, 1, …, n,
//! ```
//!
//! and then combine them identically (Eq. 12 / 14 / 15 of the paper):
//!
//! ```text
//! s⁽ⁿ⁾(u, v) = cⁿ · m(n)(u, v) + (1 − c) · Σ_{k=0}^{n−1} cᵏ · m(k)(u, v).
//! ```
//!
//! The estimators differ only in how each `m(k)` is obtained (exactly,
//! sampled, or mixed), so this module centralises the combination step and a
//! small [`MeetingProfile`] value that the experiment harness uses to report
//! per-step contributions.

/// Combines meeting probabilities `m(0), …, m(n)` (index = step) into the
/// `n`-th SimRank score using the paper's Eq. (12).
///
/// # Panics
///
/// Panics if fewer than two values are given (`n ≥ 1` requires `m(0)` and
/// `m(1)`), or if `decay` is outside `(0, 1)`.
pub fn combine_meeting_probabilities(meeting: &[f64], decay: f64) -> f64 {
    assert!(
        meeting.len() >= 2,
        "need meeting probabilities for steps 0..=n with n >= 1"
    );
    assert!(
        decay > 0.0 && decay < 1.0,
        "the decay factor must lie in (0, 1), got {decay}"
    );
    let n = meeting.len() - 1;
    let mut score = decay.powi(n as i32) * meeting[n];
    let mut c_pow = 1.0;
    for &m in &meeting[..n] {
        score += (1.0 - decay) * c_pow * m;
        c_pow *= decay;
    }
    score
}

/// Meeting probabilities of one vertex pair, step by step, together with the
/// resulting SimRank score.  Produced by the estimators' `profile` methods so
/// the convergence experiment (Fig. 8) and the tests can inspect per-step
/// values.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeetingProfile {
    /// `m(k)` for `k = 0, …, n` (index = step).
    pub meeting: Vec<f64>,
    /// The decay factor used for the combination.
    pub decay: f64,
}

impl MeetingProfile {
    /// Creates a profile from per-step meeting probabilities.
    pub fn new(meeting: Vec<f64>, decay: f64) -> Self {
        MeetingProfile { meeting, decay }
    }

    /// The horizon `n`.
    pub fn horizon(&self) -> usize {
        self.meeting.len() - 1
    }

    /// The combined SimRank score `s⁽ⁿ⁾`.
    pub fn score(&self) -> f64 {
        combine_meeting_probabilities(&self.meeting, self.decay)
    }

    /// The SimRank score truncated to a smaller horizon `n' ≤ n` — used by
    /// the convergence experiment to report `s⁽¹⁾, s⁽²⁾, …` from a single
    /// profile.
    pub fn score_at_horizon(&self, horizon: usize) -> f64 {
        assert!(
            horizon >= 1 && horizon <= self.horizon(),
            "horizon out of range"
        );
        combine_meeting_probabilities(&self.meeting[..=horizon], self.decay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vertices_reach_one_in_the_limit() {
        // For u == v, every m(k) is at least ... well, m(0) = 1; if all
        // m(k) = 1 the combination telescopes to 1 regardless of n.
        let meeting = vec![1.0; 6];
        let s = combine_meeting_probabilities(&meeting, 0.6);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_meeting_probabilities_give_zero_similarity_except_m0() {
        // Distinct vertices that can never meet: only the k = 0 term (which
        // is 0 for distinct vertices) contributes.
        let meeting = vec![0.0; 6];
        assert_eq!(combine_meeting_probabilities(&meeting, 0.6), 0.0);
    }

    #[test]
    fn hand_computed_combination() {
        // n = 2, c = 0.5, m = [0, 0.3, 0.2]:
        // s = c^2 * 0.2 + (1-c) * (c^0 * 0 + c^1 * 0.3) = 0.05 + 0.075 = 0.125.
        let s = combine_meeting_probabilities(&[0.0, 0.3, 0.2], 0.5);
        assert!((s - 0.125).abs() < 1e-12);
    }

    #[test]
    fn combination_is_monotone_in_each_meeting_probability() {
        let base = vec![0.0, 0.2, 0.1, 0.05];
        let s0 = combine_meeting_probabilities(&base, 0.6);
        for k in 0..base.len() {
            let mut bumped = base.clone();
            bumped[k] += 0.01;
            assert!(combine_meeting_probabilities(&bumped, 0.6) > s0);
        }
    }

    #[test]
    fn profile_scores_and_truncation() {
        let profile = MeetingProfile::new(vec![1.0, 0.4, 0.3, 0.2], 0.6);
        assert_eq!(profile.horizon(), 3);
        let full = profile.score();
        assert!((full - combine_meeting_probabilities(&[1.0, 0.4, 0.3, 0.2], 0.6)).abs() < 1e-15);
        let truncated = profile.score_at_horizon(2);
        assert!((truncated - combine_meeting_probabilities(&[1.0, 0.4, 0.3], 0.6)).abs() < 1e-15);
        // Successive horizons differ by at most c^{n+1} (Theorem 2 both are
        // within c^{n+1} of the limit; adjacent ones within 2c^{n+1} — here we
        // just check they are close).
        assert!((full - truncated).abs() <= 0.6f64.powi(3) + 1e-12);
    }

    #[test]
    fn profiles_serialise_with_their_decay() {
        let profile = MeetingProfile::new(vec![1.0, 0.25], 0.6);
        let json = serde_json::to_string(&profile).unwrap();
        let restored: MeetingProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, profile);
        assert!((restored.score() - profile.score()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "steps 0..=n")]
    fn too_few_values_panic() {
        let _ = combine_meeting_probabilities(&[1.0], 0.6);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn bad_decay_panics() {
        let _ = combine_meeting_probabilities(&[1.0, 0.5], 1.5);
    }

    #[test]
    #[should_panic(expected = "horizon out of range")]
    fn truncation_out_of_range_panics() {
        let profile = MeetingProfile::new(vec![1.0, 0.4], 0.6);
        let _ = profile.score_at_horizon(5);
    }
}
