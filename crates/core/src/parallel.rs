//! Parallel batch-query helpers.
//!
//! The paper's evaluation averages every measurement over 1000 independent
//! vertex-pair queries, and real applications (the entity-resolution case
//! study, the protein case study, the CLI) likewise issue many independent
//! single-pair queries against the same graph.  The estimators carry mutable
//! state (seeded RNGs, filter-vector caches), so they cannot be shared across
//! threads directly; these helpers follow the standard *factory* pattern
//! instead: the caller supplies a closure that builds a fresh estimator, one
//! estimator is constructed per rayon worker, and the queries are distributed
//! over the workers.
//!
//! Determinism: for estimators whose answers do not depend on query order —
//! every exact estimator, e.g. [`crate::BaselineEstimator`] — the returned
//! values are identical regardless of the number of threads (pinned by the
//! `parallel_determinism` integration tests).  Randomised estimators
//! ([`crate::SamplingEstimator`], [`crate::TwoPhaseEstimator`],
//! [`crate::SpeedupEstimator`]) advance their internal RNG per query, and
//! `map_init` reuses one estimator for the consecutive queries of a work
//! chunk, so their per-pair estimates *do* depend on how the batch is split
//! across workers: two runs agree exactly only under the same thread count,
//! and otherwise agree statistically (same seeds, same sample sizes).  Pin
//! the thread count with `rayon::ThreadPoolBuilder` + `install` when exact
//! reproducibility of sampled batch results is required.

use crate::top_k::{ScoredPair, ScoredVertex};
use crate::SimRankEstimator;
use rayon::prelude::*;
use ugraph::VertexId;

/// Evaluates `s(u, v)` for every pair in `pairs`, in parallel, preserving the
/// input order in the output.
///
/// `factory` is called once per rayon worker (plus once per work-stealing
/// split) to obtain a private estimator; construct it with a fixed seed for
/// reproducible results.
pub fn par_similarities<E, F>(factory: F, pairs: &[(VertexId, VertexId)]) -> Vec<f64>
where
    E: SimRankEstimator,
    F: Fn() -> E + Sync + Send,
{
    pairs
        .par_iter()
        .map_init(&factory, |estimator, &(u, v)| estimator.similarity(u, v))
        .collect()
}

/// Evaluates `s(u, v)` for every pair and returns `(pair, score)` tuples in
/// input order — convenience for harness code that reports both.
pub fn par_scored_pairs<E, F>(factory: F, pairs: &[(VertexId, VertexId)]) -> Vec<ScoredPair>
where
    E: SimRankEstimator,
    F: Fn() -> E + Sync + Send,
{
    pairs
        .par_iter()
        .map_init(&factory, |estimator, &(u, v)| ScoredPair {
            pair: (u.min(v), u.max(v)),
            score: estimator.similarity(u, v),
        })
        .collect()
}

/// The `k` highest-scoring pairs among `pairs`, evaluated in parallel.
/// Self-pairs are skipped and each unordered pair is evaluated once; ties are
/// broken by pair id for determinism.
pub fn par_top_k_pairs<E, F>(
    factory: F,
    pairs: &[(VertexId, VertexId)],
    k: usize,
) -> Vec<ScoredPair>
where
    E: SimRankEstimator,
    F: Fn() -> E + Sync + Send,
{
    let mut unique: Vec<(VertexId, VertexId)> = pairs
        .iter()
        .filter(|(a, b)| a != b)
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    unique.sort_unstable();
    unique.dedup();
    let mut scored = par_scored_pairs(factory, &unique);
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.pair.cmp(&b.pair))
    });
    scored.truncate(k);
    scored
}

/// The `k` candidates most similar to `query`, evaluated in parallel.  The
/// query vertex itself is skipped.
pub fn par_top_k_similar_to<E, F>(
    factory: F,
    query: VertexId,
    candidates: &[VertexId],
    k: usize,
) -> Vec<ScoredVertex>
where
    E: SimRankEstimator,
    F: Fn() -> E + Sync + Send,
{
    let mut scored: Vec<ScoredVertex> = candidates
        .par_iter()
        .filter(|&&v| v != query)
        .map_init(&factory, |estimator, &v| ScoredVertex {
            vertex: v,
            score: estimator.similarity(query, v),
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.vertex.cmp(&b.vertex))
    });
    scored.truncate(k);
    scored
}

/// Mean similarity over a batch of pairs, evaluated in parallel — the
/// aggregate the paper's Fig. 8 convergence experiment reports.
pub fn par_mean_similarity<E, F>(factory: F, pairs: &[(VertexId, VertexId)]) -> f64
where
    E: SimRankEstimator,
    F: Fn() -> E + Sync + Send,
{
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = pairs
        .par_iter()
        .map_init(&factory, |estimator, &(u, v)| estimator.similarity(u, v))
        .sum();
    total / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEstimator;
    use crate::config::SimRankConfig;
    use crate::two_phase::TwoPhaseEstimator;
    use ugraph::{UncertainGraph, UncertainGraphBuilder};

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    fn all_ordered_pairs(n: u32) -> Vec<(VertexId, VertexId)> {
        (0..n).flat_map(|u| (0..n).map(move |v| (u, v))).collect()
    }

    #[test]
    fn parallel_baseline_matches_sequential() {
        let g = fig1_graph();
        let config = SimRankConfig::default();
        let pairs = all_ordered_pairs(5);
        let parallel = par_similarities(|| BaselineEstimator::new(&g, config), &pairs);
        let sequential: Vec<f64> = {
            let mut estimator = BaselineEstimator::new(&g, config);
            pairs
                .iter()
                .map(|&(u, v)| estimator.similarity(u, v))
                .collect()
        };
        assert_eq!(parallel.len(), sequential.len());
        for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
            assert!(
                (p - s).abs() < 1e-12,
                "pair index {i}: parallel {p}, sequential {s}"
            );
        }
    }

    #[test]
    fn parallel_results_preserve_input_order() {
        let g = fig1_graph();
        let config = SimRankConfig::default();
        let pairs = vec![(0u32, 1u32), (3, 4), (2, 0), (1, 1)];
        let scored = par_scored_pairs(|| BaselineEstimator::new(&g, config), &pairs);
        assert_eq!(scored.len(), pairs.len());
        assert_eq!(scored[0].pair, (0, 1));
        assert_eq!(scored[1].pair, (3, 4));
        assert_eq!(scored[2].pair, (0, 2));
        assert_eq!(scored[3].pair, (1, 1));
    }

    #[test]
    fn top_k_pairs_dedupes_and_ranks() {
        let g = fig1_graph();
        let config = SimRankConfig::default();
        let pairs = vec![(0u32, 1u32), (1, 0), (2, 3), (0, 2), (4, 4), (3, 2)];
        let top = par_top_k_pairs(|| BaselineEstimator::new(&g, config), &pairs, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        // Every returned pair is one of the distinct non-self inputs.
        for scored in &top {
            assert!([(0, 1), (2, 3), (0, 2)].contains(&scored.pair));
        }
    }

    #[test]
    fn top_k_similar_to_matches_single_threaded_ranking() {
        let g = fig1_graph();
        let config = SimRankConfig::default();
        let candidates: Vec<VertexId> = (0..5).collect();
        let parallel =
            par_top_k_similar_to(|| BaselineEstimator::new(&g, config), 0, &candidates, 3);
        let mut sequential_estimator = BaselineEstimator::new(&g, config);
        let sequential =
            crate::top_k::top_k_similar_to(&mut sequential_estimator, 0, candidates.clone(), 3);
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.vertex, s.vertex);
            assert!((p.score - s.score).abs() < 1e-12);
        }
    }

    #[test]
    fn randomised_estimators_are_reproducible_across_runs() {
        // Two identical parallel runs with the same factory seeds give the
        // same estimates (each query gets a fresh estimator stream).
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(200).with_seed(77);
        let pairs = all_ordered_pairs(5);
        let first = par_similarities(|| TwoPhaseEstimator::new(&g, config), &pairs);
        let second = par_similarities(|| TwoPhaseEstimator::new(&g, config), &pairs);
        // Note: map_init may reuse one estimator for several consecutive
        // pairs, so run-to-run equality is only guaranteed when the work
        // split is the same; compare statistically instead of exactly.
        let mean_first: f64 = first.iter().sum::<f64>() / first.len() as f64;
        let mean_second: f64 = second.iter().sum::<f64>() / second.len() as f64;
        assert!((mean_first - mean_second).abs() < 0.05);
        for (a, b) in first.iter().zip(&second) {
            assert!((a - b).abs() < 0.2, "estimates drifted: {a} vs {b}");
        }
    }

    #[test]
    fn mean_similarity_of_empty_batch_is_zero() {
        let g = fig1_graph();
        let config = SimRankConfig::default();
        assert_eq!(
            par_mean_similarity(|| BaselineEstimator::new(&g, config), &[]),
            0.0
        );
        let mean = par_mean_similarity(|| BaselineEstimator::new(&g, config), &[(0, 0), (1, 1)]);
        assert!(
            mean > 0.5,
            "self-pairs should have high similarity, got {mean}"
        );
    }
}
