//! K-shard scatter-gather over the cached engine stack.
//!
//! [`ShardedQueryEngine`] partitions the vertex space into K contiguous
//! ranges.  Each shard owns a full serving stack of its own — a
//! [`CsrGraph`] + `DeltaOverlay` replica behind a [`CachedQueryEngine`]
//! (its own `usim_cache` instance) and an optional dedicated worker pool —
//! so shards never contend on a lock, an arena or a cache line.  A
//! scatter-gather router in front splits batch and top-k requests by the
//! shard that *owns* each pair, queries the owning shards concurrently,
//! and merges through the exact `rank_pairs` / `rank_candidates` tie-break
//! code the single-engine path uses.
//!
//! # Ownership vs storage
//!
//! A pair `(u, v)` is owned by the shard whose vertex range contains
//! `min(u, v)` — ownership governs routing, cache residency and worker
//! pools.  Each shard still holds the *whole* graph: SimRank walks
//! traverse arbitrary arcs, so the adjacency cannot be range-partitioned
//! without remote lookups mid-walk.  What sharding buys on one host is
//! isolation (per-shard locks, arenas, caches and pools scale with K);
//! across hosts the same router becomes a frontend over K processes each
//! loading the same snapshot — the multi-process step ROADMAP item 4
//! names.
//!
//! # Determinism
//!
//! > **Sharded answers are bit-identical to the single-engine (K=1) path,
//! > at any shard count and any worker count, before and after update
//! > rounds.**
//!
//! This falls out of three facts: every pair's RNG stream is keyed on
//! `(seed, u, v)` — never on which engine, thread or shard computes it;
//! every shard replica applies the same update batches in the same order,
//! so all replicas are the same graph; and ranking goes through the shared
//! `rank_pairs` / `rank_candidates` helpers, so dedup, tie-breaks and
//! truncation are byte-for-byte the single-engine code path.
//!
//! Consistency under concurrency is preserved by a two-level lock
//! hierarchy: queries hold a read gate while they fan out (so one answer
//! never mixes epochs), and [`ShardedQueryEngine::apply_updates`] holds
//! the write gate while it walks the shards (so replicas advance in
//! lockstep).

use crate::cached::CachedQueryEngine;
use crate::config::SimRankConfig;
use crate::engine::{QueryEngine, QueryError};
use crate::meeting::MeetingProfile;
use crate::shared::SharedQueryEngine;
use crate::top_k::{ScoredPair, ScoredVertex};
use parking_lot::RwLock;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::collections::HashMap;
use ugraph::{CsrGraph, GraphUpdate, UncertainGraph, UpdateError, UpdateSummary, VertexId};
use usim_cache::CacheStats;
use usim_obs::{time_stage, Stage, StageTrace};

// The sharded engine is handed to serving threads as-is; a future field
// with thread-unsafe interior mutability must fail here, not in a server.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedQueryEngine>();
};

/// How to cut the vertex space into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of shards K (0 is treated as 1).
    pub shards: usize,
    /// Worker threads of each shard's dedicated pool; 0 inherits the
    /// ambient rayon thread count instead of pinning one.
    pub threads_per_shard: usize,
    /// `usim_cache` capacity of each shard's own cache; 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec {
            shards: 1,
            threads_per_shard: 0,
            cache_capacity: 0,
        }
    }
}

impl ShardSpec {
    /// A spec with `shards` shards and the other knobs at their defaults.
    pub fn with_shards(shards: usize) -> Self {
        ShardSpec {
            shards,
            ..Default::default()
        }
    }
}

/// A point-in-time description of one shard, as reported in the server's
/// `stats` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardInfo {
    /// Shard index in `0..num_shards`.
    pub index: usize,
    /// First vertex id this shard owns.
    pub start: VertexId,
    /// One past the last vertex id this shard owns (`start == end` for a
    /// shard that owns no vertices, possible when K > n).
    pub end: VertexId,
    /// Worker threads of the shard's dedicated pool (0 = ambient).
    pub threads: usize,
    /// The shard's cache counters, `None` when caching is disabled.
    pub cache: Option<CacheStats>,
}

/// One logical query inside a coalesced engine batch — the unit a request
/// coalescer collects from concurrent connections and hands to
/// [`ShardedQueryEngine::serve_batch`] as one slot.
///
/// The variants mirror the server's query request types (`similarity`,
/// `profile`, `top_k`, `batch`); updates and metadata requests are never
/// coalesced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoalescedQuery {
    /// One pair score — [`ShardedQueryEngine::similarity`].
    Similarity(VertexId, VertexId),
    /// One pair meeting-probability profile —
    /// [`ShardedQueryEngine::profile`].
    Profile(VertexId, VertexId),
    /// Ranked candidates for one query vertex —
    /// [`ShardedQueryEngine::batch_top_k_similar_to`].
    TopK {
        /// The query vertex.
        query: VertexId,
        /// The candidate vertices to rank.
        candidates: Vec<VertexId>,
        /// How many ranked results to keep.
        k: usize,
    },
    /// Scores of a pair batch in input order —
    /// [`ShardedQueryEngine::batch_similarities`].
    Scores(Vec<(VertexId, VertexId)>),
}

/// The answer to one [`CoalescedQuery`] slot, carrying exactly what the
/// matching per-request entry point would have returned.
#[derive(Debug, Clone, PartialEq)]
pub enum CoalescedAnswer {
    /// Answer to [`CoalescedQuery::Similarity`].
    Similarity(f64),
    /// Answer to [`CoalescedQuery::Profile`].
    Profile(MeetingProfile),
    /// Answer to [`CoalescedQuery::TopK`].
    TopK(Vec<ScoredVertex>),
    /// Answer to [`CoalescedQuery::Scores`].
    Scores(Vec<f64>),
}

/// One shard: a full engine replica, its cache, and its worker pool.
#[derive(Debug)]
struct Shard {
    engine: CachedQueryEngine,
    pool: Option<ThreadPool>,
}

impl Shard {
    /// Runs `f` on this shard's pool (or the ambient one when unpinned).
    fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }
}

/// K vertex-range shards behind a scatter-gather router; see the module
/// docs for the design and the determinism contract.
///
/// # Example
///
/// ```
/// use ugraph::UncertainGraphBuilder;
/// use usim_core::{CachedQueryEngine, SharedQueryEngine, ShardSpec, ShardedQueryEngine, SimRankConfig};
///
/// let g = UncertainGraphBuilder::new(4)
///     .arc(2, 0, 0.9)
///     .arc(2, 1, 0.8)
///     .arc(3, 2, 0.7)
///     .build()
///     .unwrap();
/// let config = SimRankConfig::default().with_samples(100).with_seed(7);
/// let sharded = ShardedQueryEngine::new(&g, config, ShardSpec::with_shards(3));
/// let single = CachedQueryEngine::new(SharedQueryEngine::new(&g, config), 0);
///
/// // Scatter-gather answers are bit-identical to the single-engine path.
/// let pairs = [(0, 1), (1, 2), (2, 3), (0, 3)];
/// assert_eq!(
///     sharded.batch_similarities(&pairs).unwrap(),
///     single.batch_similarities(&pairs).unwrap(),
/// );
/// ```
#[derive(Debug)]
pub struct ShardedQueryEngine {
    shards: Vec<Shard>,
    /// `num_shards + 1` cut points: shard `s` owns vertices
    /// `boundaries[s] .. boundaries[s + 1]`.
    boundaries: Vec<usize>,
    num_vertices: usize,
    config: SimRankConfig,
    /// Readers fan out under the read gate; updates advance every replica
    /// under the write gate — one answer never mixes epochs.
    gate: RwLock<()>,
}

impl ShardedQueryEngine {
    /// Builds a sharded engine for `graph`: the CSR is compiled once and
    /// replicated per shard.
    pub fn new(graph: &UncertainGraph, config: SimRankConfig, spec: ShardSpec) -> Self {
        Self::from_csr(CsrGraph::from_uncertain(graph), config, spec)
    }

    /// Builds a sharded engine directly on a compiled CSR — the snapshot
    /// boot path (see [`QueryEngine::from_csr`]): no per-edge work happens
    /// here beyond cloning the arrays per shard.
    pub fn from_csr(csr: CsrGraph, config: SimRankConfig, spec: ShardSpec) -> Self {
        let k = spec.shards.max(1);
        let n = csr.num_vertices();
        let boundaries: Vec<usize> = (0..=k).map(|s| s * n / k).collect();
        let mut shards = Vec::with_capacity(k);
        let mut remaining = Some(csr);
        for index in 0..k {
            let replica = if index + 1 == k {
                remaining.take().expect("replica source consumed early")
            } else {
                remaining.as_ref().expect("replica source alive").clone()
            };
            let engine = CachedQueryEngine::new(
                SharedQueryEngine::from_engine(QueryEngine::from_csr(replica, config)),
                spec.cache_capacity,
            );
            let pool = (spec.threads_per_shard > 0).then(|| {
                ThreadPoolBuilder::new()
                    .num_threads(spec.threads_per_shard)
                    .build()
                    .expect("thread pool construction")
            });
            shards.push(Shard { engine, pool });
        }
        ShardedQueryEngine {
            shards,
            boundaries,
            num_vertices: n,
            config,
            gate: RwLock::new(()),
        }
    }

    /// Wraps an already-built [`CachedQueryEngine`] as the single shard of
    /// a K=1 router — the adapter that lets callers constructed around the
    /// unsharded stack (the server's default path) run behind the same
    /// front door as a real K-shard deployment, with zero behaviour change.
    pub fn single(engine: CachedQueryEngine) -> Self {
        let num_vertices = engine.num_vertices();
        let config = engine.config();
        ShardedQueryEngine {
            shards: vec![Shard { engine, pool: None }],
            boundaries: vec![0, num_vertices],
            num_vertices,
            config,
            gate: RwLock::new(()),
        }
    }

    /// Runs `f` against shard 0's raw engine under the query gate *and* the
    /// shard's read lock — a consistent snapshot of epoch, arc count and
    /// configuration (all shards agree on these by the lockstep invariant).
    pub fn with_read<R>(&self, f: impl FnOnce(&QueryEngine) -> R) -> R {
        let _gate = self.gate.read();
        self.shards[0].engine.shared().with_read(f)
    }

    /// Number of shards K.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of live arcs.
    pub fn num_arcs(&self) -> usize {
        self.shards[0].engine.num_arcs()
    }

    /// The configuration every shard runs under.
    pub fn config(&self) -> SimRankConfig {
        self.config
    }

    /// How many update batches have been applied (identical across shards).
    pub fn update_epoch(&self) -> u64 {
        self.shards[0].engine.update_epoch()
    }

    /// Whether the shards carry result caches.
    pub fn cache_enabled(&self) -> bool {
        self.shards[0].engine.cache_enabled()
    }

    /// Per-shard cache capacity (0 when disabled).
    pub fn cache_capacity(&self) -> usize {
        self.shards[0].engine.cache_capacity()
    }

    /// The shard owning vertex `v` (callers validate `v` first).
    pub fn shard_of(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.num_vertices);
        self.boundaries.partition_point(|&b| b <= v as usize) - 1
    }

    /// Descriptions of every shard: vertex ranges, pool sizes and cache
    /// counters — what the server's `stats` frame reports per shard.
    pub fn shard_infos(&self) -> Vec<ShardInfo> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardInfo {
                index,
                start: self.boundaries[index] as VertexId,
                end: self.boundaries[index + 1] as VertexId,
                threads: shard.pool.as_ref().map_or(0, |p| p.current_num_threads()),
                cache: shard.engine.cache_stats(),
            })
            .collect()
    }

    /// Cache counters summed over all shards, `None` when caching is
    /// disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        let mut total: Option<CacheStats> = None;
        for shard in &self.shards {
            let stats = shard.engine.cache_stats()?;
            let sum = total.get_or_insert_with(CacheStats::default);
            sum.hits += stats.hits;
            sum.misses += stats.misses;
            sum.stale += stats.stale;
            sum.evictions += stats.evictions;
            sum.insertions += stats.insertions;
            sum.survived += stats.survived;
            sum.killed += stats.killed;
            sum.entries += stats.entries;
        }
        total
    }

    /// Direct read access to one shard's cached engine, for observability
    /// and tests.  **Queries only**: applying updates through this handle
    /// would advance one replica and desynchronise the shards — all
    /// updates must go through [`ShardedQueryEngine::apply_updates`].
    pub fn shard_engine(&self, index: usize) -> &CachedQueryEngine {
        &self.shards[index].engine
    }

    fn validate(&self, ids: impl IntoIterator<Item = VertexId>) -> Result<(), QueryError> {
        let num_vertices = self.num_vertices;
        for vertex in ids {
            if (vertex as usize) >= num_vertices {
                return Err(QueryError::VertexOutOfRange {
                    vertex,
                    num_vertices,
                });
            }
        }
        Ok(())
    }

    /// `(epoch, score)` of one pair, computed by the owning shard through
    /// its cache (see [`CachedQueryEngine::similarity`]).
    pub fn similarity(&self, u: VertexId, v: VertexId) -> Result<(u64, f64), QueryError> {
        self.similarity_with_trace(u, v, None)
    }

    /// [`ShardedQueryEngine::similarity`] with stage tracing: routing and
    /// validation count toward `shard_route`; the owning shard's cache
    /// probe and walk sampling are split inside (a point query runs on one
    /// shard only, so per-stage times never overlap concurrent work).
    pub fn similarity_with_trace(
        &self,
        u: VertexId,
        v: VertexId,
        trace: Option<&StageTrace>,
    ) -> Result<(u64, f64), QueryError> {
        let _gate = self.gate.read();
        let shard = time_stage(trace, Stage::ShardRoute, || {
            self.validate([u, v])
                .map(|()| &self.shards[self.shard_of(u.min(v))])
        })?;
        shard.run(|| shard.engine.similarity_with_trace(u, v, trace))
    }

    /// `(epoch, profile)` of one pair, computed by the owning shard through
    /// its cache (see [`CachedQueryEngine::profile`]).
    pub fn profile(&self, u: VertexId, v: VertexId) -> Result<(u64, MeetingProfile), QueryError> {
        self.profile_with_trace(u, v, None)
    }

    /// [`ShardedQueryEngine::profile`] with stage tracing (see
    /// [`ShardedQueryEngine::similarity_with_trace`]).
    pub fn profile_with_trace(
        &self,
        u: VertexId,
        v: VertexId,
        trace: Option<&StageTrace>,
    ) -> Result<(u64, MeetingProfile), QueryError> {
        let _gate = self.gate.read();
        let shard = time_stage(trace, Stage::ShardRoute, || {
            self.validate([u, v])
                .map(|()| &self.shards[self.shard_of(u.min(v))])
        })?;
        shard.run(|| shard.engine.profile_with_trace(u, v, trace))
    }

    /// `(epoch, scores)` of a batch in input order: pairs are scattered to
    /// their owning shards, computed concurrently, and gathered back.
    pub fn batch_similarities(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<(u64, Vec<f64>), QueryError> {
        self.batch_similarities_with_trace(pairs, None)
    }

    /// [`ShardedQueryEngine::batch_similarities`] with stage tracing (see
    /// [`ShardedQueryEngine::similarity_with_trace`]).
    pub fn batch_similarities_with_trace(
        &self,
        pairs: &[(VertexId, VertexId)],
        trace: Option<&StageTrace>,
    ) -> Result<(u64, Vec<f64>), QueryError> {
        let _gate = self.gate.read();
        time_stage(trace, Stage::ShardRoute, || {
            self.validate(pairs.iter().flat_map(|&(u, v)| [u, v]))
        })?;
        let epoch = self.update_epoch();
        let scores = self.scatter_scores(pairs, trace)?;
        Ok((epoch, scores))
    }

    /// `(epoch, ranked pairs)`: scores scatter-gather across shards, the
    /// ranking runs through the same `rank_pairs` dedup / tie-break /
    /// truncation as the single-engine path.
    pub fn batch_top_k(
        &self,
        pairs: &[(VertexId, VertexId)],
        k: usize,
    ) -> Result<(u64, Vec<ScoredPair>), QueryError> {
        let _gate = self.gate.read();
        self.validate(pairs.iter().flat_map(|&(u, v)| [u, v]))?;
        let epoch = self.update_epoch();
        let ranked =
            crate::engine::rank_pairs(pairs, k, |unique| self.scatter_scores(unique, None))?;
        Ok((epoch, ranked))
    }

    /// `(epoch, ranked candidates)` for one query vertex (see
    /// [`CachedQueryEngine::batch_top_k_similar_to`]); the per-pair scores
    /// scatter-gather across shards.
    pub fn batch_top_k_similar_to(
        &self,
        query: VertexId,
        candidates: &[VertexId],
        k: usize,
    ) -> Result<(u64, Vec<ScoredVertex>), QueryError> {
        self.batch_top_k_similar_to_with_trace(query, candidates, k, None)
    }

    /// [`ShardedQueryEngine::batch_top_k_similar_to`] with stage tracing:
    /// validation counts toward `shard_route`, scoring toward the scatter's
    /// stages, and the final ranking toward `merge`.
    pub fn batch_top_k_similar_to_with_trace(
        &self,
        query: VertexId,
        candidates: &[VertexId],
        k: usize,
        trace: Option<&StageTrace>,
    ) -> Result<(u64, Vec<ScoredVertex>), QueryError> {
        let _gate = self.gate.read();
        time_stage(trace, Stage::ShardRoute, || {
            self.validate(std::iter::once(query).chain(candidates.iter().copied()))
        })?;
        let epoch = self.update_epoch();
        // Score first (the scatter times its own stages), then rank the
        // scored pairs under `merge` — timing `rank_candidates` whole would
        // double-count the scoring it drives.
        let mut unique: Vec<VertexId> =
            candidates.iter().copied().filter(|&v| v != query).collect();
        unique.sort_unstable();
        unique.dedup();
        let wanted: Vec<(VertexId, VertexId)> = unique.into_iter().map(|v| (query, v)).collect();
        let scores = self.scatter_scores(&wanted, trace)?;
        let score_map: HashMap<(VertexId, VertexId), f64> =
            wanted.into_iter().zip(scores).collect();
        let ranked = time_stage(trace, Stage::Merge, || {
            crate::engine::rank_candidates(query, candidates, k, |pairs| {
                Ok(pairs.iter().map(|pair| score_map[pair]).collect())
            })
        })?;
        Ok((epoch, ranked))
    }

    /// Answers a batch of heterogeneous queries — the coalesced entry
    /// point: every slot is served under **one** read-gate acquisition, so
    /// all answers share one epoch, and all the pair scores the batch needs
    /// (similarity pairs, `batch` pairs, and each top-k's candidate pairs)
    /// are gathered into **one** [`scatter_scores`] call, which dedups
    /// repeated pairs across slots — concurrent clients asking overlapping
    /// questions pay for each distinct pair once.
    ///
    /// Answers are bit-identical to calling the per-request entry points
    /// ([`ShardedQueryEngine::similarity`] and friends) one at a time: the
    /// scores come off the same pair-keyed RNG streams regardless of batch
    /// shape, and ranking goes through the same `rank_candidates` helper
    /// as [`ShardedQueryEngine::batch_top_k`].  Validation stays per-slot
    /// — an invalid query turns into its own `Err` and never poisons the
    /// rest of the batch.
    ///
    /// [`scatter_scores`]: ShardedQueryEngine::batch_similarities
    pub fn serve_batch(
        &self,
        queries: &[CoalescedQuery],
    ) -> (u64, Vec<Result<CoalescedAnswer, QueryError>>) {
        self.serve_batch_with_trace(queries, None)
    }

    /// [`ShardedQueryEngine::serve_batch`] with stage tracing: pass-1
    /// validation/collection counts toward `shard_route`, the scatter
    /// toward its own stages, and pass-2 assembly (including per-shard
    /// profile slots) toward `merge`.
    pub fn serve_batch_with_trace(
        &self,
        queries: &[CoalescedQuery],
        trace: Option<&StageTrace>,
    ) -> (u64, Vec<Result<CoalescedAnswer, QueryError>>) {
        let _gate = self.gate.read();
        let epoch = self.update_epoch();

        // Pass 1: validate each slot (same id order as the per-request
        // entry points, so error values match exactly) and gather every
        // pair score the valid slots will need.
        let route_start = trace.map(|_| std::time::Instant::now());
        let mut invalid: Vec<Option<QueryError>> = Vec::with_capacity(queries.len());
        let mut wanted: Vec<(VertexId, VertexId)> = Vec::new();
        for query in queries {
            let check = match query {
                CoalescedQuery::Similarity(u, v) | CoalescedQuery::Profile(u, v) => {
                    self.validate([*u, *v])
                }
                CoalescedQuery::TopK {
                    query, candidates, ..
                } => self.validate(std::iter::once(*query).chain(candidates.iter().copied())),
                CoalescedQuery::Scores(pairs) => {
                    self.validate(pairs.iter().flat_map(|&(u, v)| [u, v]))
                }
            };
            if let Err(error) = check {
                invalid.push(Some(error));
                continue;
            }
            invalid.push(None);
            match query {
                CoalescedQuery::Similarity(u, v) => wanted.push((*u, *v)),
                // Profiles are not plain scores; they are answered per
                // owning shard in pass 2.
                CoalescedQuery::Profile(..) => {}
                CoalescedQuery::TopK {
                    query, candidates, ..
                } => {
                    // Request exactly the pairs `rank_candidates` will ask
                    // for, so the assembly lookups below always hit.
                    let mut unique: Vec<VertexId> = candidates
                        .iter()
                        .copied()
                        .filter(|&v| v != *query)
                        .collect();
                    unique.sort_unstable();
                    unique.dedup();
                    wanted.extend(unique.into_iter().map(|v| (*query, v)));
                }
                CoalescedQuery::Scores(pairs) => wanted.extend_from_slice(pairs),
            }
        }
        if let (Some(trace), Some(start)) = (trace, route_start) {
            trace.add(Stage::ShardRoute, start.elapsed());
        }

        // One scatter for the whole coalesced batch; each shard's engine
        // dedups repeated pairs internally, across slots and clients.
        // Validation above already excluded every out-of-range id, so this
        // cannot fail; if it somehow does, every valid slot reports it.
        let score_map: HashMap<(VertexId, VertexId), f64> =
            match self.scatter_scores(&wanted, trace) {
                Ok(scores) => wanted.into_iter().zip(scores).collect(),
                Err(error) => {
                    let results = invalid
                        .into_iter()
                        .map(|slot| Err(slot.unwrap_or(error)))
                        .collect();
                    return (epoch, results);
                }
            };

        // Pass 2: assemble per-slot answers from the shared score map.
        // Profile slots run their engine work here, so their sampling time
        // lands in `merge` — an accepted coarseness (profiles are rare).
        let merge_start = trace.map(|_| std::time::Instant::now());
        let results = queries
            .iter()
            .zip(invalid)
            .map(|(query, invalid)| {
                if let Some(error) = invalid {
                    return Err(error);
                }
                match query {
                    CoalescedQuery::Similarity(u, v) => {
                        Ok(CoalescedAnswer::Similarity(score_map[&(*u, *v)]))
                    }
                    CoalescedQuery::Profile(u, v) => {
                        let shard = &self.shards[self.shard_of((*u).min(*v))];
                        shard
                            .run(|| shard.engine.profile(*u, *v))
                            .map(|(_, profile)| CoalescedAnswer::Profile(profile))
                    }
                    CoalescedQuery::TopK {
                        query,
                        candidates,
                        k,
                    } => crate::engine::rank_candidates(*query, candidates, *k, |pairs| {
                        Ok(pairs.iter().map(|pair| score_map[pair]).collect())
                    })
                    .map(CoalescedAnswer::TopK),
                    CoalescedQuery::Scores(pairs) => Ok(CoalescedAnswer::Scores(
                        pairs.iter().map(|pair| score_map[pair]).collect(),
                    )),
                }
            })
            .collect();
        if let (Some(trace), Some(start)) = (trace, merge_start) {
            trace.add(Stage::Merge, start.elapsed());
        }
        (epoch, results)
    }

    /// Applies one update batch to **every** shard replica under the write
    /// gate, keeping them in lockstep.  Validation happens on shard 0: a
    /// rejected batch leaves every replica untouched (shard 0's `apply_all`
    /// validates before mutating, and the rest are only reached on
    /// success).
    pub fn apply_updates(
        &self,
        updates: &[GraphUpdate],
    ) -> Result<(UpdateSummary, u64), UpdateError> {
        let _gate = self.gate.write();
        let first = self.shards[0].engine.apply_updates(updates)?;
        for (index, shard) in self.shards.iter().enumerate().skip(1) {
            if let Err(error) = shard.engine.apply_updates(updates) {
                // All replicas saw the same batches in the same order, so a
                // batch shard 0 accepted cannot fail elsewhere; diverging
                // replicas would silently serve different answers, which is
                // strictly worse than dying here.
                panic!("shard {index} diverged from shard 0 on an update batch: {error}");
            }
        }
        Ok(first)
    }

    /// Scores for `pairs` in input order: scatter to owning shards, gather
    /// by original slot.  Callers hold the read gate and have validated the
    /// ids.
    ///
    /// Stage attribution: with one shard the trace goes inside, where the
    /// cached engine splits `cache_lookup` from `walk_sample`.  With K > 1
    /// the shards run concurrently, so per-shard stage times would sum past
    /// the request's wall time; instead the router times the whole scatter
    /// as `walk_sample` from this thread and passes no trace inward.
    fn scatter_scores(
        &self,
        pairs: &[(VertexId, VertexId)],
        trace: Option<&StageTrace>,
    ) -> Result<Vec<f64>, QueryError> {
        if self.shards.len() == 1 || pairs.is_empty() {
            let shard = &self.shards[0];
            return shard.run(|| {
                shard
                    .engine
                    .batch_similarities_with_trace(pairs, trace)
                    .map(|(_, s)| s)
            });
        }
        let scatter_start = trace.map(|_| std::time::Instant::now());
        let mut slots_by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (slot, &(u, v)) in pairs.iter().enumerate() {
            slots_by_shard[self.shard_of(u.min(v))].push(slot);
        }
        let mut scores = vec![0.0f64; pairs.len()];
        let mut outcome: Result<(), QueryError> = Ok(());
        std::thread::scope(|scope| {
            let mut in_flight = Vec::new();
            for (index, slots) in slots_by_shard.iter().enumerate() {
                if slots.is_empty() {
                    continue;
                }
                let shard = &self.shards[index];
                let sub: Vec<(VertexId, VertexId)> =
                    slots.iter().map(|&slot| pairs[slot]).collect();
                in_flight.push((
                    slots,
                    scope.spawn(move || {
                        shard.run(|| shard.engine.batch_similarities(&sub).map(|(_, s)| s))
                    }),
                ));
            }
            for (slots, handle) in in_flight {
                match handle.join().expect("shard query worker panicked") {
                    Ok(sub_scores) => {
                        for (&slot, score) in slots.iter().zip(sub_scores) {
                            scores[slot] = score;
                        }
                    }
                    Err(error) => outcome = Err(error),
                }
            }
        });
        if let (Some(trace), Some(start)) = (trace, scatter_start) {
            trace.add(Stage::WalkSample, start.elapsed());
        }
        outcome.map(|()| scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplerKind;
    use ugraph::UncertainGraphBuilder;

    fn ladder_graph(n: u32) -> UncertainGraph {
        // A connected graph with enough vertices that every shard of a
        // 4-way split owns some, and walks cross shard ranges constantly.
        let mut builder = UncertainGraphBuilder::new(n as usize);
        for v in 0..n {
            builder = builder.arc(v, (v + 1) % n, 0.6 + 0.3 * ((v % 3) as f64) / 3.0);
            builder = builder.arc((v + 2) % n, v, 0.8);
        }
        builder.build().unwrap()
    }

    fn straddling_pairs(n: u32) -> Vec<(VertexId, VertexId)> {
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        for u in 0..n {
            pairs.push((u, (u + n / 2) % n)); // far apart: different shards
            pairs.push(((u + 1) % n, u)); // adjacent, sometimes reversed
        }
        pairs.push((0, 0)); // self pair
        pairs.push((n - 1, 0)); // extreme shards
        pairs
    }

    fn config() -> SimRankConfig {
        SimRankConfig::default().with_samples(120).with_seed(11)
    }

    #[test]
    fn boundaries_cover_the_vertex_space_exactly_once() {
        let graph = ladder_graph(10);
        for k in [1, 2, 3, 4, 7, 10, 13] {
            let engine = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(k));
            assert_eq!(engine.num_shards(), k);
            let infos = engine.shard_infos();
            assert_eq!(infos[0].start, 0);
            assert_eq!(infos[k - 1].end as usize, engine.num_vertices());
            for window in infos.windows(2) {
                assert_eq!(window[0].end, window[1].start, "gap between shards");
            }
            for v in 0..10u32 {
                let s = engine.shard_of(v);
                assert!(
                    infos[s].start <= v && v < infos[s].end,
                    "vertex {v} routed to shard {s} {infos:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_answers_are_bit_identical_to_the_single_engine_path() {
        let graph = ladder_graph(12);
        let single = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(1));
        let reference = QueryEngine::new(&graph, config());
        let pairs = straddling_pairs(12);
        for k in [2, 3, 4, 5] {
            let sharded = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(k));
            assert_eq!(
                sharded.batch_similarities(&pairs).unwrap(),
                single.batch_similarities(&pairs).unwrap(),
                "K={k} batch"
            );
            assert_eq!(
                sharded.batch_similarities(&pairs).unwrap().1,
                reference.batch_similarities(&pairs).unwrap(),
                "K={k} vs raw engine"
            );
            assert_eq!(
                sharded.batch_top_k(&pairs, 5).unwrap(),
                single.batch_top_k(&pairs, 5).unwrap(),
                "K={k} top-k"
            );
            let candidates: Vec<VertexId> = (1..12).collect();
            assert_eq!(
                sharded.batch_top_k_similar_to(0, &candidates, 4).unwrap(),
                single.batch_top_k_similar_to(0, &candidates, 4).unwrap(),
                "K={k} top-k-similar-to"
            );
            assert_eq!(
                sharded.similarity(3, 9).unwrap(),
                single.similarity(3, 9).unwrap(),
                "K={k} similarity"
            );
            assert_eq!(
                sharded.profile(2, 10).unwrap(),
                single.profile(2, 10).unwrap(),
                "K={k} profile"
            );
        }
    }

    #[test]
    fn alias_mode_is_shard_count_invariant() {
        // The alias backend's own determinism pin: scatter-gather over K > 1
        // shards is bit-identical to K = 1 and to the raw engine, including
        // after an update round patches the per-vertex alias rows.
        let graph = ladder_graph(12);
        let alias_config = config().with_sampler(SamplerKind::Alias);
        let single = ShardedQueryEngine::new(&graph, alias_config, ShardSpec::with_shards(1));
        let reference = QueryEngine::new(&graph, alias_config);
        let pairs = straddling_pairs(12);
        for k in [2, 4, 5] {
            let sharded = ShardedQueryEngine::new(&graph, alias_config, ShardSpec::with_shards(k));
            assert_eq!(
                sharded.batch_similarities(&pairs).unwrap().1,
                single.batch_similarities(&pairs).unwrap().1,
                "K={k} alias batch"
            );
            assert_eq!(
                sharded.batch_similarities(&pairs).unwrap().1,
                reference.batch_similarities(&pairs).unwrap(),
                "K={k} alias vs raw engine"
            );
            assert_eq!(
                sharded.batch_top_k(&pairs, 5).unwrap().1,
                single.batch_top_k(&pairs, 5).unwrap().1,
                "K={k} alias top-k"
            );
            let updates = [GraphUpdate::SetProbability {
                source: 0,
                target: 1,
                probability: 0.123,
            }];
            sharded.apply_updates(&updates).unwrap();
            single.apply_updates(&updates).unwrap();
            assert_eq!(
                sharded.batch_similarities(&pairs).unwrap().1,
                single.batch_similarities(&pairs).unwrap().1,
                "K={k} alias batch after update"
            );
            // Reset the single-shard replica for the next K.
            single
                .apply_updates(&[GraphUpdate::SetProbability {
                    source: 0,
                    target: 1,
                    probability: 0.6,
                }])
                .unwrap();
        }
    }

    #[test]
    fn updates_keep_every_replica_in_lockstep() {
        let graph = ladder_graph(12);
        let sharded = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(4));
        let single = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(1));
        let pairs = straddling_pairs(12);
        let updates = [
            GraphUpdate::SetProbability {
                source: 0,
                target: 1,
                probability: 0.05,
            },
            GraphUpdate::DeleteArc {
                source: 2,
                target: 0,
            },
            GraphUpdate::InsertArc {
                source: 5,
                target: 0,
                probability: 0.9,
            },
        ];
        let (summary_sharded, epoch_sharded) = sharded.apply_updates(&updates).unwrap();
        let (summary_single, epoch_single) = single.apply_updates(&updates).unwrap();
        assert_eq!(summary_sharded, summary_single);
        assert_eq!((epoch_sharded, epoch_single), (1, 1));
        assert_eq!(sharded.num_arcs(), single.num_arcs());
        assert_eq!(
            sharded.batch_similarities(&pairs).unwrap(),
            single.batch_similarities(&pairs).unwrap(),
            "post-update scatter-gather must stay bit-identical"
        );
        // Every shard replica reports the same epoch.
        for index in 0..sharded.num_shards() {
            assert_eq!(sharded.shard_engine(index).update_epoch(), 1);
        }
    }

    #[test]
    fn rejected_batches_leave_every_replica_untouched() {
        let graph = ladder_graph(8);
        let sharded = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(3));
        let arcs_before = sharded.num_arcs();
        let err = sharded
            .apply_updates(&[
                GraphUpdate::InsertArc {
                    source: 0,
                    target: 3,
                    probability: 0.5,
                },
                GraphUpdate::DeleteArc {
                    source: 7,
                    target: 3, // no such arc: the whole batch must reject
                },
            ])
            .unwrap_err();
        assert_eq!(
            err,
            UpdateError::ArcNotFound {
                source: 7,
                target: 3
            }
        );
        assert_eq!(sharded.update_epoch(), 0);
        assert_eq!(sharded.num_arcs(), arcs_before);
        for index in 0..sharded.num_shards() {
            assert_eq!(sharded.shard_engine(index).update_epoch(), 0);
        }
    }

    #[test]
    fn error_semantics_match_the_single_engine() {
        let graph = ladder_graph(6);
        let sharded = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(3));
        let expected = QueryError::VertexOutOfRange {
            vertex: 99,
            num_vertices: 6,
        };
        assert_eq!(sharded.similarity(0, 99).unwrap_err(), expected);
        assert_eq!(sharded.profile(99, 0).unwrap_err(), expected);
        assert_eq!(
            sharded.batch_similarities(&[(0, 1), (99, 2)]).unwrap_err(),
            expected
        );
        assert_eq!(sharded.batch_top_k(&[(99, 99)], 3).unwrap_err(), expected);
        assert_eq!(
            sharded.batch_top_k_similar_to(99, &[0], 2).unwrap_err(),
            expected
        );
    }

    #[test]
    fn per_shard_caches_fill_and_hit_independently() {
        let graph = ladder_graph(12);
        let spec = ShardSpec {
            shards: 3,
            threads_per_shard: 0,
            cache_capacity: 64,
        };
        let sharded = ShardedQueryEngine::new(&graph, config(), spec);
        assert!(sharded.cache_enabled());
        assert_eq!(sharded.cache_capacity(), 64);
        let pairs = straddling_pairs(12);
        let (_, first) = sharded.batch_similarities(&pairs).unwrap();
        let (_, second) = sharded.batch_similarities(&pairs).unwrap();
        assert_eq!(first, second);
        let total = sharded.cache_stats().unwrap();
        assert!(total.hits > 0, "repeat batch must hit: {total:?}");
        let infos = sharded.shard_infos();
        assert_eq!(infos.len(), 3);
        // Ownership by min(u, v) skews work toward low shards, but every
        // shard that owns a queried pair must have filled its own cache.
        let per_shard_insertions: Vec<u64> = infos
            .iter()
            .map(|info| info.cache.as_ref().unwrap().insertions)
            .collect();
        assert!(
            per_shard_insertions.iter().all(|&i| i > 0),
            "every shard owns some pairs here: {per_shard_insertions:?}"
        );
        let sum: u64 = per_shard_insertions.iter().sum();
        assert_eq!(sum, total.insertions);
    }

    #[test]
    fn dedicated_pools_do_not_change_answers() {
        let graph = ladder_graph(10);
        let pairs = straddling_pairs(10);
        let ambient = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(2));
        for threads in [1, 4] {
            let pinned = ShardedQueryEngine::new(
                &graph,
                config(),
                ShardSpec {
                    shards: 2,
                    threads_per_shard: threads,
                    cache_capacity: 0,
                },
            );
            assert_eq!(
                pinned.batch_similarities(&pairs).unwrap(),
                ambient.batch_similarities(&pairs).unwrap(),
                "threads_per_shard={threads}"
            );
            for info in pinned.shard_infos() {
                assert_eq!(info.threads, threads);
            }
        }
    }

    #[test]
    fn serve_batch_is_bit_identical_to_per_request_calls() {
        let graph = ladder_graph(12);
        let candidates: Vec<VertexId> = (0..12).collect();
        let queries = vec![
            CoalescedQuery::Similarity(3, 9),
            CoalescedQuery::Scores(straddling_pairs(12)),
            CoalescedQuery::Profile(2, 10),
            CoalescedQuery::TopK {
                query: 0,
                candidates: candidates.clone(),
                k: 4,
            },
            // Duplicates across slots: the shared scatter dedups them.
            CoalescedQuery::Similarity(3, 9),
            CoalescedQuery::Scores(vec![(3, 9), (9, 3), (0, 0)]),
            CoalescedQuery::TopK {
                query: 0,
                candidates,
                k: 0,
            },
        ];
        for k in [1, 3, 4] {
            let engine = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(k));
            let (epoch, answers) = engine.serve_batch(&queries);
            assert_eq!(epoch, 0);
            assert_eq!(answers.len(), queries.len());
            for (query, answer) in queries.iter().zip(&answers) {
                let expected = match query {
                    CoalescedQuery::Similarity(u, v) => {
                        CoalescedAnswer::Similarity(engine.similarity(*u, *v).unwrap().1)
                    }
                    CoalescedQuery::Profile(u, v) => {
                        CoalescedAnswer::Profile(engine.profile(*u, *v).unwrap().1)
                    }
                    CoalescedQuery::TopK {
                        query,
                        candidates,
                        k,
                    } => CoalescedAnswer::TopK(
                        engine
                            .batch_top_k_similar_to(*query, candidates, *k)
                            .unwrap()
                            .1,
                    ),
                    CoalescedQuery::Scores(pairs) => {
                        CoalescedAnswer::Scores(engine.batch_similarities(pairs).unwrap().1)
                    }
                };
                assert_eq!(answer.as_ref().unwrap(), &expected, "K={k} {query:?}");
            }
        }
    }

    #[test]
    fn serve_batch_isolates_invalid_slots_and_tracks_the_epoch() {
        let graph = ladder_graph(8);
        let engine = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(3));
        let queries = vec![
            CoalescedQuery::Similarity(0, 99), // invalid
            CoalescedQuery::Similarity(0, 1),
            CoalescedQuery::Scores(vec![(1, 2), (99, 0)]), // invalid
            CoalescedQuery::TopK {
                query: 99, // invalid
                candidates: vec![0, 1],
                k: 2,
            },
            CoalescedQuery::Profile(2, 3),
        ];
        let (epoch, answers) = engine.serve_batch(&queries);
        assert_eq!(epoch, 0);
        let expected_err = QueryError::VertexOutOfRange {
            vertex: 99,
            num_vertices: 8,
        };
        assert_eq!(answers[0], Err(expected_err));
        assert_eq!(
            answers[1],
            Ok(CoalescedAnswer::Similarity(
                engine.similarity(0, 1).unwrap().1
            ))
        );
        assert_eq!(answers[2], Err(expected_err));
        assert_eq!(answers[3], Err(expected_err));
        assert!(answers[4].is_ok());

        // After an update round, serve_batch reports the new epoch and the
        // post-update scores.
        engine
            .apply_updates(&[GraphUpdate::SetProbability {
                source: 0,
                target: 1,
                probability: 0.05,
            }])
            .unwrap();
        let (epoch, answers) = engine.serve_batch(&[CoalescedQuery::Similarity(0, 1)]);
        assert_eq!(epoch, 1);
        assert_eq!(
            answers[0],
            Ok(CoalescedAnswer::Similarity(
                engine.similarity(0, 1).unwrap().1
            ))
        );
    }

    #[test]
    fn survival_composes_across_shards() {
        // Two disconnected components: queries in A (0..3), updates in B
        // (3..6).  Each shard revalidates its own cache; the summed stats
        // must show every cached entry surviving the disjoint round.
        let graph = UncertainGraphBuilder::new(6)
            .arc(2, 0, 0.9)
            .arc(2, 1, 0.8)
            .arc(1, 0, 0.7)
            .arc(5, 3, 0.9)
            .arc(5, 4, 0.8)
            .build()
            .unwrap();
        let spec = ShardSpec {
            shards: 3,
            threads_per_shard: 0,
            cache_capacity: 64,
        };
        let sharded = ShardedQueryEngine::new(&graph, config(), spec);
        let pairs = [(0, 1), (0, 2), (1, 2)];
        let (_, before) = sharded.batch_similarities(&pairs).unwrap();

        let updates = [GraphUpdate::SetProbability {
            source: 5,
            target: 3,
            probability: 0.2,
        }];
        sharded.apply_updates(&updates).unwrap();
        let stats = sharded.cache_stats().unwrap();
        assert_eq!(stats.killed, 0, "{stats:?}");
        assert_eq!(stats.survived as usize, stats.entries, "{stats:?}");
        assert!(stats.survived > 0, "{stats:?}");

        let misses_before = stats.misses;
        let (epoch, after) = sharded.batch_similarities(&pairs).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(after, before);
        let stats = sharded.cache_stats().unwrap();
        assert_eq!(stats.misses, misses_before, "served from survivors");

        // Ground truth: a fresh engine on the updated graph agrees.
        let mut reference = QueryEngine::new(&graph, config());
        reference.apply_updates(&updates).unwrap();
        assert_eq!(after, reference.batch_similarities(&pairs).unwrap());
    }

    #[test]
    fn serve_batch_on_an_empty_batch_is_a_no_op() {
        let graph = ladder_graph(5);
        let engine = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(2));
        let (epoch, answers) = engine.serve_batch(&[]);
        assert_eq!((epoch, answers.len()), (0, 0));
    }

    #[test]
    fn empty_batches_and_k_larger_than_n() {
        let graph = ladder_graph(5);
        let sharded = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(8));
        assert_eq!(sharded.num_shards(), 8);
        let (epoch, scores) = sharded.batch_similarities(&[]).unwrap();
        assert_eq!((epoch, scores.len()), (0, 0));
        let single = ShardedQueryEngine::new(&graph, config(), ShardSpec::with_shards(1));
        let pairs = [(0, 1), (1, 2), (2, 0), (0, 4), (3, 4)];
        assert_eq!(
            sharded.batch_similarities(&pairs).unwrap(),
            single.batch_similarities(&pairs).unwrap(),
        );
    }
}
