//! The Sampling algorithm (Section VI-B, Fig. 4 of the paper).
//!
//! For a query `(u, v)` the estimator samples `N` lazily-instantiated walks
//! of horizon `n` from `u` and `N` from `v` and estimates each meeting
//! probability by the fraction of sample indices whose two walks are at the
//! same vertex after `k` steps (Eq. 13), then combines with Eq. (14).
//! Lemma 4 / Theorem 4 give the Chernoff-style error bound, exposed in
//! [`crate::bounds`].
//!
//! The walks run on the [`CsrGraph`] fast path: the graph is compiled once
//! into flat CSR arrays (both directions, so no transposed copy is ever
//! materialised) and sampled through a persistent [`WalkArena`], making the
//! per-query hot loop allocation-free.  The RNG draw order is identical to
//! the original `WalkSampler` implementation, so estimates for a given seed
//! are unchanged by the migration.

use crate::config::{SimRankConfig, WalkDirection};
use crate::meeting::MeetingProfile;
use crate::SimRankEstimator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rwalk::arena::{CsrSampler, WalkArena, DEAD};
use ugraph::{CsrGraph, CsrView, UncertainGraph, VertexId};

/// Monte-Carlo single-pair SimRank on an uncertain graph (the paper's
/// Sampling algorithm).
#[derive(Debug)]
pub struct SamplingEstimator {
    csr: CsrGraph,
    config: SimRankConfig,
    rng: StdRng,
    arena: WalkArena,
    walk_u: Vec<VertexId>,
    walk_v: Vec<VertexId>,
}

impl SamplingEstimator {
    /// Creates a Sampling estimator for `graph` under `config`.
    pub fn new(graph: &UncertainGraph, config: SimRankConfig) -> Self {
        config.validate();
        SamplingEstimator {
            csr: CsrGraph::from_uncertain(graph),
            config,
            rng: StdRng::seed_from_u64(config.seed),
            arena: WalkArena::with_capacity(graph.num_vertices()),
            walk_u: Vec::new(),
            walk_v: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimRankConfig {
        &self.config
    }

    /// Estimated meeting probabilities `m̂(0), …, m̂(n)` for a pair.
    pub fn profile(&mut self, u: VertexId, v: VertexId) -> MeetingProfile {
        let n = self.config.horizon;
        let num_samples = self.config.num_samples;
        let mut meeting = vec![0.0; n + 1];
        meeting[0] = if u == v { 1.0 } else { 0.0 };
        // Field-level borrow of `csr` only, so the arena and RNG below can
        // be borrowed mutably alongside the sampler's view.
        let view: CsrView<'_> = match self.config.direction {
            WalkDirection::InNeighbors => self.csr.reverse(),
            WalkDirection::OutNeighbors => self.csr.forward(),
        };
        let sampler = CsrSampler::new(view);
        for _ in 0..num_samples {
            sampler.sample_walk_into(&mut self.arena, u, n, &mut self.rng, &mut self.walk_u);
            sampler.sample_walk_into(&mut self.arena, v, n, &mut self.rng, &mut self.walk_v);
            for (k, slot) in meeting.iter_mut().enumerate().take(n + 1).skip(1) {
                let a = self.walk_u[k];
                if a != DEAD && a == self.walk_v[k] {
                    *slot += 1.0;
                }
            }
        }
        for slot in meeting.iter_mut().skip(1) {
            *slot /= num_samples as f64;
        }
        MeetingProfile::new(meeting, self.config.decay)
    }
}

impl SimRankEstimator for SamplingEstimator {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.profile(u, v).score()
    }

    fn name(&self) -> &'static str {
        "Sampling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEstimator;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn estimates_are_close_to_the_exact_baseline() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(4000).with_seed(17);
        let baseline = BaselineEstimator::new(&g, config);
        let mut sampling = SamplingEstimator::new(&g, config);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (0, 3), (3, 4)] {
            let exact = baseline.try_similarity(u, v).unwrap();
            let estimate = sampling.similarity(u, v);
            assert!(
                (exact - estimate).abs() < 0.03,
                "pair ({u},{v}): exact {exact}, sampled {estimate}"
            );
        }
    }

    #[test]
    fn per_step_meeting_estimates_track_exact_values() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(6000).with_seed(23);
        let baseline = BaselineEstimator::new(&g, config);
        let mut sampling = SamplingEstimator::new(&g, config);
        let exact = baseline.profile(0, 1);
        let estimated = sampling.profile(0, 1);
        assert_eq!(exact.meeting.len(), estimated.meeting.len());
        for k in 0..exact.meeting.len() {
            assert!(
                (exact.meeting[k] - estimated.meeting[k]).abs() < 0.03,
                "step {k}: exact {}, sampled {}",
                exact.meeting[k],
                estimated.meeting[k]
            );
        }
    }

    #[test]
    fn csr_migration_matches_the_legacy_walk_sampler_exactly() {
        // The CSR fast path consumes the RNG in the same order as the
        // original WalkSampler implementation, so a hand-rolled legacy
        // profile from the same seed must agree bit-for-bit.
        use rand::SeedableRng;
        use rwalk::sampler::WalkSampler;

        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(400).with_seed(99);
        let mut migrated = SamplingEstimator::new(&g, config);

        let working = g.transpose(); // legacy in-neighbor walk graph
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut legacy_sampler = WalkSampler::new(&working);
        for (u, v) in [(0u32, 1u32), (2, 3), (4, 0)] {
            let n = config.horizon;
            let mut meeting = vec![0.0; n + 1];
            meeting[0] = if u == v { 1.0 } else { 0.0 };
            for _ in 0..config.num_samples {
                let walk_u = legacy_sampler.sample_walk(u, n, &mut rng);
                let walk_v = legacy_sampler.sample_walk(v, n, &mut rng);
                for (k, slot) in meeting.iter_mut().enumerate().take(n + 1).skip(1) {
                    if let (Some(a), Some(b)) = (walk_u.position(k), walk_v.position(k)) {
                        if a == b {
                            *slot += 1.0;
                        }
                    }
                }
            }
            for slot in meeting.iter_mut().skip(1) {
                *slot /= config.num_samples as f64;
            }
            let legacy = MeetingProfile::new(meeting, config.decay);
            assert_eq!(migrated.profile(u, v), legacy, "pair ({u},{v})");
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(500).with_seed(5);
        let mut a = SamplingEstimator::new(&g, config);
        let mut b = SamplingEstimator::new(&g, config);
        assert_eq!(a.similarity(0, 1), b.similarity(0, 1));
        assert_eq!(a.similarity(2, 3), b.similarity(2, 3));
    }

    #[test]
    fn self_similarity_estimate_is_high() {
        let g = fig1_graph();
        let mut sampling = SamplingEstimator::new(&g, SimRankConfig::default().with_samples(2000));
        // m(0) = 1 exactly; later steps are (at least) the probability that
        // two independent walks follow the same trajectory, so s(u,u) is
        // large but not necessarily 1 under uncertainty.
        let s = sampling.similarity(2, 2);
        assert!(s > 0.4 && s <= 1.0 + 1e-12, "s(2,2) = {s}");
    }

    #[test]
    fn estimates_stay_in_range_and_are_symmetric_in_expectation() {
        let g = fig1_graph();
        let mut sampling =
            SamplingEstimator::new(&g, SimRankConfig::default().with_samples(3000).with_seed(3));
        for u in g.vertices() {
            for v in g.vertices() {
                let s = sampling.similarity(u, v);
                assert!((0.0..=1.0 + 1e-12).contains(&s), "s({u},{v}) = {s}");
            }
        }
        let s_ab = sampling.similarity(0, 1);
        let s_ba = sampling.similarity(1, 0);
        assert!((s_ab - s_ba).abs() < 0.05);
    }

    #[test]
    fn name_is_reported() {
        let g = fig1_graph();
        let sampling = SamplingEstimator::new(&g, SimRankConfig::default());
        assert_eq!(sampling.name(), "Sampling");
    }
}
