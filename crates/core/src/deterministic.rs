//! Classic SimRank on deterministic graphs (Jeh & Widom), in both the
//! iterative matrix form (Eq. 3 of the paper) and the random-walk
//! (meeting-probability) form.
//!
//! These are the paper's comparison baselines that ignore uncertainty:
//! SimRank-II in the measure-comparison experiment (Fig. 7 / Table III), and
//! DSIM / SimDER in the case studies — all of them are classic SimRank run on
//! the skeleton of the uncertain graph.

use crate::meeting::combine_meeting_probabilities;
use ugraph::{DiGraph, VertexId};
use umatrix::{DenseMatrix, SparseMatrix, SparseVector};

/// Column-normalised adjacency matrix `A` of `g`: `A[i][j] = 1/|I(v_j)|` if
/// `(v_i, v_j)` is an arc, 0 otherwise.
fn column_normalized_adjacency(g: &DiGraph) -> DenseMatrix {
    let n = g.num_vertices();
    let mut a = DenseMatrix::zeros(n, n);
    for v in g.vertices() {
        let in_neighbors = g.in_neighbors(v);
        if in_neighbors.is_empty() {
            continue;
        }
        let weight = 1.0 / in_neighbors.len() as f64;
        for &u in in_neighbors {
            a[(u as usize, v as usize)] = weight;
        }
    }
    a
}

/// One-step transition matrix of the *reverse* random walk (step to a
/// uniformly chosen in-neighbor), as a sparse row-stochastic matrix.
fn reverse_transition_matrix(g: &DiGraph) -> SparseMatrix {
    let n = g.num_vertices();
    let mut triplets = Vec::with_capacity(g.num_arcs());
    for v in g.vertices() {
        let in_neighbors = g.in_neighbors(v);
        if in_neighbors.is_empty() {
            continue;
        }
        let weight = 1.0 / in_neighbors.len() as f64;
        for &u in in_neighbors {
            triplets.push((v, u, weight));
        }
    }
    SparseMatrix::from_triplets(n, n, triplets)
}

/// All-pairs SimRank on a deterministic graph by the iterative formula
/// `S⁽⁰⁾ = I`, `S⁽ᵏ⁾ = c·Aᵀ S⁽ᵏ⁻¹⁾ A + (1 − c)·I` (Eq. 3 of the paper).
///
/// # Panics
///
/// Panics unless `0 < c < 1` and `n ≥ 1`.
pub fn simrank_all_pairs(g: &DiGraph, c: f64, n: usize) -> DenseMatrix {
    assert!(c > 0.0 && c < 1.0, "the decay factor must lie in (0, 1)");
    assert!(n >= 1, "at least one iteration is required");
    let a = column_normalized_adjacency(g);
    let a_t = a.transpose();
    let size = g.num_vertices();
    let mut s = DenseMatrix::identity(size);
    for _ in 0..n {
        let mut next = a_t.matmul(&s).matmul(&a);
        next.scale(c);
        for i in 0..size {
            next[(i, i)] += 1.0 - c;
        }
        s = next;
    }
    s
}

/// Single-pair SimRank on a deterministic graph via reverse-walk meeting
/// probabilities: `s⁽ⁿ⁾(u, v) = cⁿ m(n) + (1 − c) Σ_{k<n} cᵏ m(k)` where
/// `m(k)` is the probability that two reverse walks from `u` and `v` are at
/// the same vertex after `k` steps.
pub fn simrank_single_pair(g: &DiGraph, u: VertexId, v: VertexId, c: f64, n: usize) -> f64 {
    assert!(c > 0.0 && c < 1.0, "the decay factor must lie in (0, 1)");
    assert!(n >= 1, "at least one iteration is required");
    let transition = reverse_transition_matrix(g);
    let mut row_u = SparseVector::unit(u, 1.0);
    let mut row_v = SparseVector::unit(v, 1.0);
    let mut meeting = Vec::with_capacity(n + 1);
    meeting.push(if u == v { 1.0 } else { 0.0 });
    for _ in 1..=n {
        row_u = transition.vecmat(&row_u);
        row_v = transition.vecmat(&row_v);
        meeting.push(row_u.dot(&row_v));
    }
    combine_meeting_probabilities(&meeting, c)
}

/// Precomputed all-pairs SimRank of a deterministic graph, for workloads that
/// query many pairs of the same graph (the DSIM / SimDER baselines).
#[derive(Debug, Clone)]
pub struct DeterministicSimRank {
    matrix: DenseMatrix,
    decay: f64,
    iterations: usize,
}

impl DeterministicSimRank {
    /// Computes all-pairs SimRank with decay `c` and `n` iterations.
    pub fn new(g: &DiGraph, c: f64, n: usize) -> Self {
        DeterministicSimRank {
            matrix: simrank_all_pairs(g, c, n),
            decay: c,
            iterations: n,
        }
    }

    /// The SimRank similarity `s(u, v)`.
    pub fn similarity(&self, u: VertexId, v: VertexId) -> f64 {
        self.matrix[(u as usize, v as usize)]
    }

    /// The full similarity matrix.
    pub fn matrix(&self) -> &DenseMatrix {
        &self.matrix
    }

    /// The decay factor the matrix was computed with.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// The number of iterations the matrix was computed with.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::DiGraphBuilder;

    /// The in-neighbor structure used in many SimRank papers: two professors
    /// and two students linked through a shared university page.
    fn small_graph() -> DiGraph {
        // 0 = Univ, 1 = ProfA, 2 = ProfB, 3 = StudentA, 4 = StudentB
        DiGraphBuilder::new(5)
            .arc(0, 1)
            .arc(0, 2)
            .arc(1, 3)
            .arc(2, 4)
            .arc(3, 0)
            .arc(4, 0)
            .build()
            .unwrap()
    }

    #[test]
    fn diagonal_dominates_and_stays_in_range() {
        // Under Eq. (3) — the approximation the paper adopts — the diagonal
        // is *not* pinned to 1: s(u,u) combines the probabilities that two
        // independent reverse walks from u meet, which is below 1 whenever u
        // has more than one in-neighbor.  It must still lie in (0, 1].
        let g = small_graph();
        let s = simrank_all_pairs(&g, 0.6, 8);
        for i in 0..g.num_vertices() {
            assert!(
                s[(i, i)] > 0.0 && s[(i, i)] <= 1.0 + 1e-12,
                "s({i},{i}) = {}",
                s[(i, i)]
            );
            // Every vertex here has at most one in-neighbor pair to average
            // over, and the decay keeps (1 - c) as a hard floor.
            assert!(s[(i, i)] >= 1.0 - 0.6 - 1e-12);
        }
        // Vertices with a single in-neighbor have s(u,u) = c * s(w,w) + (1-c)
        // where w is that in-neighbor (a fixpoint relation, so allow the
        // finite-iteration slack); spot-check vertex 3 (in-neighbor 1).
        assert!((s[(3, 3)] - (0.6 * s[(1, 1)] + 0.4)).abs() < 0.02);
    }

    #[test]
    fn symmetry_and_range() {
        let g = small_graph();
        let s = simrank_all_pairs(&g, 0.6, 8);
        for i in 0..5 {
            for j in 0..5 {
                assert!((s[(i, j)] - s[(j, i)]).abs() < 1e-12);
                assert!(s[(i, j)] >= -1e-12 && s[(i, j)] <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn professors_are_similar_through_common_university() {
        let g = small_graph();
        let c = 0.8;
        let s = simrank_all_pairs(&g, c, 30);
        // ProfA and ProfB share their only in-neighbor (Univ), so the Eq. (3)
        // fixpoint satisfies s(ProfA, ProfB) = c * s(Univ, Univ); similarly
        // the students relate to the professors one level down.
        assert!((s[(1, 2)] - c * s[(0, 0)]).abs() < 0.01);
        assert!((s[(3, 4)] - c * s[(1, 2)]).abs() < 0.01);
        // The chain orders the similarities: professors > students > unrelated.
        assert!(s[(1, 2)] > s[(3, 4)]);
        assert!(s[(3, 4)] > s[(1, 3)]);
    }

    #[test]
    fn vertices_without_in_neighbors_have_zero_similarity_to_others() {
        let g = DiGraphBuilder::new(3).arc(0, 1).arc(0, 2).build().unwrap();
        let s = simrank_all_pairs(&g, 0.6, 5);
        // Vertex 0 has no in-neighbors: its similarity to anything else is 0.
        assert_eq!(s[(0, 1)], 0.0);
        assert_eq!(s[(0, 2)], 0.0);
        // Vertices 1 and 2 share their single in-neighbor (vertex 0), so
        // s(1,2) = c * s(0,0) = c * (1 - c) under Eq. (3), because a vertex
        // without in-neighbors has self-similarity 1 - c.
        assert!((s[(0, 0)] - 0.4).abs() < 1e-12);
        assert!((s[(1, 2)] - 0.6 * 0.4).abs() < 1e-12);
    }

    #[test]
    fn single_pair_matches_all_pairs() {
        let g = small_graph();
        let c = 0.6;
        let n = 6;
        let all = simrank_all_pairs(&g, c, n);
        for u in 0..5u32 {
            for v in 0..5u32 {
                let single = simrank_single_pair(&g, u, v, c, n);
                let full = all[(u as usize, v as usize)];
                assert!(
                    (single - full).abs() < 1e-9,
                    "pair ({u},{v}): single {single} vs all-pairs {full}"
                );
            }
        }
    }

    #[test]
    fn iterations_converge_monotonically_in_error() {
        let g = small_graph();
        let c = 0.6;
        let reference = simrank_all_pairs(&g, c, 30);
        for n in 1..=8 {
            let s = simrank_all_pairs(&g, c, n);
            let error = s.max_abs_diff(&reference);
            // Theorem 2: |s^(n) - s| <= c^(n+1); allow a small constant slack
            // for the telescoping against the n = 30 reference.
            assert!(
                error <= 2.0 * c.powi(n as i32 + 1) + 1e-9,
                "error {error} exceeds the Theorem 2 bound at n = {n}"
            );
        }
    }

    #[test]
    fn precomputed_wrapper_matches_function() {
        let g = small_graph();
        let pre = DeterministicSimRank::new(&g, 0.7, 6);
        let direct = simrank_all_pairs(&g, 0.7, 6);
        assert!(pre.matrix().max_abs_diff(&direct) < 1e-15);
        assert_eq!(pre.decay(), 0.7);
        assert_eq!(pre.iterations(), 6);
        assert!((pre.similarity(1, 2) - direct[(1, 2)]).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn rejects_bad_decay() {
        let g = small_graph();
        let _ = simrank_all_pairs(&g, 1.2, 3);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn rejects_zero_iterations() {
        let g = small_graph();
        let _ = simrank_single_pair(&g, 0, 1, 0.6, 0);
    }
}
