//! Top-k similarity queries, used by the case studies (Fig. 13 / Fig. 14 of
//! the paper: top-20 similar protein pairs, top-5 proteins similar to a query
//! protein).

use crate::SimRankEstimator;
use ugraph::VertexId;

/// A vertex together with its similarity score to the query vertex.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScoredVertex {
    /// The candidate vertex.
    pub vertex: VertexId,
    /// Its similarity to the query vertex.
    pub score: f64,
}

/// A vertex pair together with its similarity score.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScoredPair {
    /// The vertex pair (stored with the smaller id first).
    pub pair: (VertexId, VertexId),
    /// Its similarity.
    pub score: f64,
}

/// Sorts by descending score, breaking ties by the given id for determinism.
/// Shared by the generic top-k helpers and [`crate::QueryEngine`]'s batch
/// ranking so every ranking path orders identically.
pub(crate) fn sort_descending_by_score<T>(
    items: &mut [T],
    score: impl Fn(&T) -> f64,
    tie: impl Fn(&T) -> u64,
) {
    items.sort_by(|a, b| {
        score(b)
            .partial_cmp(&score(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| tie(a).cmp(&tie(b)))
    });
}

/// Returns the `k` candidates most similar to `query`, in decreasing score
/// order (ties broken by vertex id for determinism).  The query vertex itself
/// is skipped if it appears among the candidates.
pub fn top_k_similar_to<E: SimRankEstimator + ?Sized>(
    estimator: &mut E,
    query: VertexId,
    candidates: impl IntoIterator<Item = VertexId>,
    k: usize,
) -> Vec<ScoredVertex> {
    let mut scored: Vec<ScoredVertex> = candidates
        .into_iter()
        .filter(|&v| v != query)
        .map(|v| ScoredVertex {
            vertex: v,
            score: estimator.similarity(query, v),
        })
        .collect();
    sort_descending_by_score(&mut scored, |s| s.score, |s| s.vertex as u64);
    scored.truncate(k);
    scored
}

/// Returns the `k` most similar pairs among the given candidate pairs, in
/// decreasing score order.  Self-pairs are skipped; each unordered pair is
/// evaluated once.
pub fn top_k_pairs<E: SimRankEstimator + ?Sized>(
    estimator: &mut E,
    pairs: impl IntoIterator<Item = (VertexId, VertexId)>,
    k: usize,
) -> Vec<ScoredPair> {
    let mut seen = std::collections::HashSet::new();
    let mut scored: Vec<ScoredPair> = Vec::new();
    for (a, b) in pairs {
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if !seen.insert(key) {
            continue;
        }
        scored.push(ScoredPair {
            pair: key,
            score: estimator.similarity(key.0, key.1),
        });
    }
    sort_descending_by_score(
        &mut scored,
        |s| s.score,
        |s| (s.pair.0 as u64) << 32 | s.pair.1 as u64,
    );
    scored.truncate(k);
    scored
}

/// Enumerates every unordered vertex pair of a graph with `num_vertices`
/// vertices — convenience for exhaustive top-k pair queries on small graphs.
pub fn all_pairs(num_vertices: usize) -> impl Iterator<Item = (VertexId, VertexId)> {
    (0..num_vertices as VertexId)
        .flat_map(move |u| ((u + 1)..num_vertices as VertexId).map(move |v| (u, v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake estimator with a fixed similarity table, for deterministic
    /// testing of the ranking logic.
    struct TableEstimator {
        table: Vec<Vec<f64>>,
        calls: usize,
    }

    impl SimRankEstimator for TableEstimator {
        fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
            self.calls += 1;
            self.table[u as usize][v as usize]
        }

        fn name(&self) -> &'static str {
            "table"
        }
    }

    fn table() -> TableEstimator {
        // 4 vertices; symmetric scores.
        let table = vec![
            vec![1.0, 0.9, 0.2, 0.5],
            vec![0.9, 1.0, 0.3, 0.3],
            vec![0.2, 0.3, 1.0, 0.8],
            vec![0.5, 0.3, 0.8, 1.0],
        ];
        TableEstimator { table, calls: 0 }
    }

    #[test]
    fn top_k_similar_to_ranks_and_truncates() {
        let mut estimator = table();
        let result = top_k_similar_to(&mut estimator, 0, 0..4, 2);
        assert_eq!(result.len(), 2);
        assert_eq!(result[0].vertex, 1);
        assert!((result[0].score - 0.9).abs() < 1e-12);
        assert_eq!(result[1].vertex, 3);
        // The query itself was skipped.
        assert!(result.iter().all(|s| s.vertex != 0));
    }

    #[test]
    fn top_k_larger_than_candidates_returns_all() {
        let mut estimator = table();
        let result = top_k_similar_to(&mut estimator, 2, 0..4, 10);
        assert_eq!(result.len(), 3);
        assert_eq!(result[0].vertex, 3);
    }

    #[test]
    fn top_k_pairs_dedupes_and_ranks() {
        let mut estimator = table();
        let pairs = vec![(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3), (2, 2)];
        let result = top_k_pairs(&mut estimator, pairs, 3);
        assert_eq!(result.len(), 3);
        assert_eq!(result[0].pair, (0, 1));
        assert_eq!(result[1].pair, (2, 3));
        // Each unordered pair was evaluated exactly once, self-pair skipped.
        assert_eq!(estimator.calls, 4);
    }

    #[test]
    fn ties_are_broken_by_vertex_id() {
        struct Constant;
        impl SimRankEstimator for Constant {
            fn similarity(&mut self, _: VertexId, _: VertexId) -> f64 {
                0.5
            }
            fn name(&self) -> &'static str {
                "constant"
            }
        }
        let result = top_k_similar_to(&mut Constant, 0, [3, 1, 2], 3);
        let order: Vec<VertexId> = result.iter().map(|s| s.vertex).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn scored_items_serialise_for_result_archives() {
        let vertex = ScoredVertex {
            vertex: 7,
            score: 0.5,
        };
        let json = serde_json::to_string(&vertex).unwrap();
        assert_eq!(serde_json::from_str::<ScoredVertex>(&json).unwrap(), vertex);
        let pair = ScoredPair {
            pair: (1, 9),
            score: 0.25,
        };
        let json = serde_json::to_string(&pair).unwrap();
        assert_eq!(serde_json::from_str::<ScoredPair>(&json).unwrap(), pair);
    }

    #[test]
    fn all_pairs_enumeration() {
        let pairs: Vec<_> = all_pairs(4).collect();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.contains(&(0, 3)));
        assert!(pairs.iter().all(|&(a, b)| a < b));
        assert_eq!(all_pairs(0).count(), 0);
        assert_eq!(all_pairs(1).count(), 0);
    }
}
