//! The Baseline algorithm (Section VI-A of the paper): exact `n`-th SimRank
//! from exact k-step transition probabilities.

use crate::config::{SimRankConfig, WalkDirection};
use crate::meeting::MeetingProfile;
use crate::SimRankEstimator;
use rwalk::transpr::{transition_matrices, transition_rows_from, TransPrError, TransPrOptions};
use std::path::Path;
use ugraph::{UncertainGraph, VertexId};
use umatrix::{ColumnStore, DenseMatrix, IoStats};

/// Returns the graph the walk machinery should run on for the configured
/// direction: the transpose for in-neighbor walks (the SimRank convention),
/// the graph itself for forward walks.
pub(crate) fn working_graph(graph: &UncertainGraph, direction: WalkDirection) -> UncertainGraph {
    match direction {
        WalkDirection::InNeighbors => graph.transpose(),
        WalkDirection::OutNeighbors => graph.clone(),
    }
}

/// Exact single-pair SimRank on an uncertain graph (the paper's Baseline).
///
/// For a query `(u, v)` the estimator enumerates all walks of length up to
/// `n` starting at `u` and at `v` (the single-source restriction of
/// `TransPr`), obtains the exact transition rows `Pr(u →ₖ ·)` and
/// `Pr(v →ₖ ·)`, forms the meeting probabilities `m(k)(u, v)` and combines
/// them with Eq. (12).  The cost grows like `d^n` per query (`d` = average
/// degree), which is why the paper proposes the sampling-based algorithms for
/// large dense graphs.
#[derive(Debug, Clone)]
pub struct BaselineEstimator {
    graph: UncertainGraph,
    config: SimRankConfig,
    options: TransPrOptions,
}

impl BaselineEstimator {
    /// Creates a Baseline estimator for `graph` under `config`.
    pub fn new(graph: &UncertainGraph, config: SimRankConfig) -> Self {
        config.validate();
        BaselineEstimator {
            graph: working_graph(graph, config.direction),
            config,
            options: TransPrOptions::default(),
        }
    }

    /// Overrides the `TransPr` options (walk budget, shortcut, pruning).
    pub fn with_transpr_options(mut self, options: TransPrOptions) -> Self {
        self.options = options;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimRankConfig {
        &self.config
    }

    /// Exact meeting probabilities `m(0), …, m(n)` for a pair, or an error if
    /// the walk budget is exceeded.
    pub fn try_profile(&self, u: VertexId, v: VertexId) -> Result<MeetingProfile, TransPrError> {
        let n = self.config.horizon;
        let rows_u = transition_rows_from(&self.graph, u, n, &self.options)?;
        let rows_v = if u == v {
            rows_u.clone()
        } else {
            transition_rows_from(&self.graph, v, n, &self.options)?
        };
        let meeting: Vec<f64> = (0..=n).map(|k| rows_u[k].dot(&rows_v[k])).collect();
        Ok(MeetingProfile::new(meeting, self.config.decay))
    }

    /// Exact meeting probabilities; panics if the walk budget is exceeded.
    pub fn profile(&self, u: VertexId, v: VertexId) -> MeetingProfile {
        self.try_profile(u, v)
            .expect("TransPr walk budget exceeded; raise TransPrOptions::max_walks")
    }

    /// Exact `s⁽ⁿ⁾(u, v)`, or an error if the walk budget is exceeded.
    pub fn try_similarity(&self, u: VertexId, v: VertexId) -> Result<f64, TransPrError> {
        Ok(self.try_profile(u, v)?.score())
    }

    /// All-pairs `s⁽ⁿ⁾` as a dense matrix, computed from the full transition
    /// matrices.  Only feasible for small graphs; used by the ground-truth
    /// comparisons and the measure-comparison experiment.
    pub fn try_similarity_matrix(&self) -> Result<DenseMatrix, TransPrError> {
        let n_vertices = self.graph.num_vertices();
        let n = self.config.horizon;
        let c = self.config.decay;
        let tm = transition_matrices(&self.graph, n, &self.options)?;
        let mut result = DenseMatrix::zeros(n_vertices, n_vertices);
        // k = 0 term: (1 - c) on the diagonal.
        for i in 0..n_vertices {
            result[(i, i)] = 1.0 - c;
        }
        let mut c_pow = 1.0;
        for k in 1..=n {
            c_pow *= c;
            let weight = if k == n { c_pow } else { (1.0 - c) * c_pow };
            let wk = tm.step(k);
            // meeting matrix at step k is W(k) * W(k)^T.
            let meeting = wk.matmul(&wk.transpose());
            result.add_scaled(&meeting, weight);
        }
        // The diagonal of the k = n term plus the geometric tail should give
        // exactly s(u, u) = combine(m(k) = 1 for all k); no correction needed
        // because the construction above mirrors Eq. (12) entry-wise.
        Ok(result)
    }
}

impl SimRankEstimator for BaselineEstimator {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.try_similarity(u, v)
            .expect("TransPr walk budget exceeded; raise TransPrOptions::max_walks")
    }

    fn name(&self) -> &'static str {
        "Baseline"
    }
}

/// The external-memory variant of the Baseline algorithm.
///
/// The paper stores each `W(k)` column-by-column on disk and reads two
/// columns per step of a query, for `O(n·|V|/B)` I/Os per pair.  This struct
/// materialises the transition matrices once (via `TransPr`), writes them to
/// [`ColumnStore`] files (one per step, storing `W(k)ᵀ` so that one column
/// read yields one source row), and then answers queries purely from disk,
/// exposing the I/O counters so the efficiency experiment can report them.
#[derive(Debug)]
pub struct ExternalBaseline {
    stores: Vec<ColumnStore>,
    config: SimRankConfig,
    num_vertices: usize,
}

impl ExternalBaseline {
    /// Builds the on-disk transition matrices for `graph` under `config`,
    /// placing one file per step in `directory`.
    pub fn build<P: AsRef<Path>>(
        graph: &UncertainGraph,
        config: SimRankConfig,
        directory: P,
        block_size: usize,
    ) -> Result<Self, TransPrError> {
        config.validate();
        let working = working_graph(graph, config.direction);
        let tm = transition_matrices(&working, config.horizon, &TransPrOptions::default())?;
        let n_vertices = working.num_vertices();
        let directory = directory.as_ref();
        let mut stores = Vec::with_capacity(config.horizon);
        for k in 1..=config.horizon {
            let path = directory.join(format!("transition_step_{k}.col"));
            let store = ColumnStore::create(&path, n_vertices, n_vertices, block_size)
                .expect("failed to create transition matrix store");
            // Column u of the store holds row u of W(k).
            let wk = tm.step(k);
            let mut column = vec![0.0; n_vertices];
            for u in 0..n_vertices {
                column.copy_from_slice(wk.row(u));
                store
                    .write_column(u, &column)
                    .expect("failed to write transition matrix column");
            }
            store.reset_io_stats();
            stores.push(store);
        }
        Ok(ExternalBaseline {
            stores,
            config,
            num_vertices: n_vertices,
        })
    }

    /// Exact meeting probabilities read back from disk.
    pub fn profile(&self, u: VertexId, v: VertexId) -> MeetingProfile {
        let n = self.config.horizon;
        let mut meeting = Vec::with_capacity(n + 1);
        meeting.push(if u == v { 1.0 } else { 0.0 });
        let mut row_u = vec![0.0; self.num_vertices];
        let mut row_v = vec![0.0; self.num_vertices];
        for store in &self.stores {
            store
                .read_column(u as usize, &mut row_u)
                .expect("failed to read transition matrix column");
            store
                .read_column(v as usize, &mut row_v)
                .expect("failed to read transition matrix column");
            meeting.push(row_u.iter().zip(&row_v).map(|(a, b)| a * b).sum());
        }
        MeetingProfile::new(meeting, self.config.decay)
    }

    /// Aggregate I/O statistics across all per-step stores.
    pub fn io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for store in &self.stores {
            let s = store.io_stats();
            total.columns_read += s.columns_read;
            total.columns_written += s.columns_written;
            total.blocks_read += s.blocks_read;
            total.blocks_written += s.blocks_written;
        }
        total
    }

    /// Deletes the backing files.
    pub fn delete(self) -> std::io::Result<()> {
        for store in self.stores {
            store.delete()?;
        }
        Ok(())
    }
}

impl SimRankEstimator for ExternalBaseline {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.profile(u, v).score()
    }

    fn name(&self) -> &'static str {
        "Baseline (external)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deterministic::simrank_all_pairs;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn self_similarity_is_maximal_and_symmetric() {
        let g = fig1_graph();
        let estimator = BaselineEstimator::new(&g, SimRankConfig::default());
        for u in g.vertices() {
            let s_uu = estimator.try_similarity(u, u).unwrap();
            assert!(s_uu > 0.0 && s_uu <= 1.0 + 1e-12);
            for v in g.vertices() {
                let s_uv = estimator.try_similarity(u, v).unwrap();
                let s_vu = estimator.try_similarity(v, u).unwrap();
                assert!((s_uv - s_vu).abs() < 1e-12, "symmetry failed for ({u},{v})");
                assert!(s_uv <= s_uu + 1e-12 || s_uv <= 1.0 + 1e-12);
                assert!((0.0..=1.0 + 1e-12).contains(&s_uv));
            }
        }
    }

    #[test]
    fn certain_graph_matches_deterministic_simrank() {
        // Theorem 3: with all probabilities 1, uncertain SimRank equals
        // classic SimRank on the skeleton.
        let g = fig1_graph().certain();
        let config = SimRankConfig::default().with_horizon(5);
        let estimator = BaselineEstimator::new(&g, config);
        let det = simrank_all_pairs(g.skeleton(), config.decay, config.horizon);
        for u in g.vertices() {
            for v in g.vertices() {
                let uncertain = estimator.try_similarity(u, v).unwrap();
                let deterministic = det[(u as usize, v as usize)];
                assert!(
                    (uncertain - deterministic).abs() < 1e-9,
                    "pair ({u},{v}): uncertain {uncertain}, deterministic {deterministic}"
                );
            }
        }
    }

    #[test]
    fn uncertainty_changes_similarities() {
        // SimRank-I vs SimRank-II in the paper's terminology: the uncertain
        // measure differs from classic SimRank on the skeleton.
        let g = fig1_graph();
        let config = SimRankConfig::default();
        let estimator = BaselineEstimator::new(&g, config);
        let det = simrank_all_pairs(g.skeleton(), config.decay, config.horizon);
        let mut max_difference: f64 = 0.0;
        for u in g.vertices() {
            for v in g.vertices() {
                if u == v {
                    continue;
                }
                let uncertain = estimator.try_similarity(u, v).unwrap();
                max_difference =
                    max_difference.max((uncertain - det[(u as usize, v as usize)]).abs());
            }
        }
        assert!(
            max_difference > 1e-3,
            "uncertainty had no effect: {max_difference}"
        );
    }

    #[test]
    fn similarity_matrix_matches_single_pair_queries() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_horizon(4);
        let estimator = BaselineEstimator::new(&g, config);
        let matrix = estimator.try_similarity_matrix().unwrap();
        for u in g.vertices() {
            for v in g.vertices() {
                let single = estimator.try_similarity(u, v).unwrap();
                let entry = matrix[(u as usize, v as usize)];
                assert!(
                    (single - entry).abs() < 1e-10,
                    "pair ({u},{v}): single {single}, matrix {entry}"
                );
            }
        }
    }

    #[test]
    fn profile_scores_match_similarity_and_horizon_truncation_is_consistent() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_horizon(6);
        let estimator = BaselineEstimator::new(&g, config);
        let profile = estimator.profile(0, 1);
        assert_eq!(profile.horizon(), 6);
        let full = estimator.try_similarity(0, 1).unwrap();
        assert!((profile.score() - full).abs() < 1e-12);
        // Truncation to horizon 3 equals an estimator configured with n = 3.
        let shorter = BaselineEstimator::new(&g, SimRankConfig::default().with_horizon(3));
        let direct = shorter.try_similarity(0, 1).unwrap();
        assert!((profile.score_at_horizon(3) - direct).abs() < 1e-12);
    }

    #[test]
    fn forward_direction_differs_from_reverse() {
        let g = fig1_graph();
        let reverse = BaselineEstimator::new(&g, SimRankConfig::default());
        let forward = BaselineEstimator::new(
            &g,
            SimRankConfig::default().with_direction(WalkDirection::OutNeighbors),
        );
        let mut differs = false;
        for u in g.vertices() {
            for v in g.vertices() {
                let a = reverse.try_similarity(u, v).unwrap();
                let b = forward.try_similarity(u, v).unwrap();
                if (a - b).abs() > 1e-6 {
                    differs = true;
                }
            }
        }
        assert!(
            differs,
            "walk direction should matter on an asymmetric graph"
        );
    }

    #[test]
    fn external_baseline_matches_in_memory_and_counts_io() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_horizon(4);
        let in_memory = BaselineEstimator::new(&g, config);
        let dir =
            std::env::temp_dir().join(format!("usim_external_baseline_{}", std::process::id()));
        let external = ExternalBaseline::build(&g, config, &dir, 4096).unwrap();
        for u in g.vertices() {
            for v in g.vertices() {
                let a = in_memory.try_similarity(u, v).unwrap();
                let b = external.profile(u, v).score();
                assert!((a - b).abs() < 1e-10, "pair ({u},{v}): {a} vs {b}");
            }
        }
        let io = external.io_stats();
        // 25 pairs * 4 steps * 2 columns per step.
        assert_eq!(io.columns_read, 25 * 4 * 2);
        assert!(io.blocks_read >= io.columns_read);
        external.delete().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trait_object_usage() {
        let g = fig1_graph();
        let mut estimator: Box<dyn SimRankEstimator> =
            Box::new(BaselineEstimator::new(&g, SimRankConfig::default()));
        assert_eq!(estimator.name(), "Baseline");
        let s = estimator.similarity(0, 1);
        assert!((0.0..=1.0).contains(&s));
    }
}
