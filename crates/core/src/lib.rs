//! SimRank similarity on uncertain graphs.
//!
//! This crate implements the primary contribution of *"SimRank Computation on
//! Uncertain Graphs"* (Zhu, Zou & Li, ICDE 2016): the SimRank measure on
//! uncertain graphs defined through random walks on possible worlds
//! (Definition 1 / Eq. 12 of the paper), and the four algorithms that
//! evaluate it:
//!
//! * [`BaselineEstimator`] — exact `n`-th SimRank via exact k-step transition
//!   probabilities (Section VI-A), optionally backed by an on-disk column
//!   store mirroring the paper's external-memory layout;
//! * [`SamplingEstimator`] — the Monte-Carlo estimator that samples `N`
//!   lazily-instantiated walks per query vertex (Section VI-B, Fig. 4);
//! * [`TwoPhaseEstimator`] — exact meeting probabilities for steps `k ≤ l`,
//!   sampled for `l < k ≤ n` (Section VI-C, the paper's SR-TS);
//! * [`SpeedupEstimator`] — SR-TS plus the bit-vector sharing technique of
//!   Section VI-D (the paper's SR-SP).
//!
//! For comparison, the crate also implements
//!
//! * classic SimRank on deterministic graphs ([`deterministic`]), used for
//!   the paper's SimRank-II / DSIM / SimDER baselines, and
//! * Du et al.'s uncertain SimRank ([`du_et_al`]), the prior work whose
//!   assumption `W(k) = (W(1))^k` the paper refutes (SimRank-III).
//!
//! For batched traffic, [`QueryEngine`] serves many pairs against one
//! CSR-compiled graph with per-worker walk arenas and pair-keyed RNG
//! streams, making batch output bit-identical to sequential queries at any
//! thread count.  The engine's graph is *live*: [`QueryEngine::apply_updates`]
//! applies [`ugraph::GraphUpdate`] batches through a [`ugraph::DeltaOverlay`]
//! (threshold-compacted back into a fresh CSR), so a long-running service
//! interleaves updates and queries without ever rebuilding the engine.
//!
//! # Walk direction
//!
//! SimRank is defined through in-neighbors ("two vertices are similar if
//! their in-neighbors are similar"), i.e. its random-walk interpretation uses
//! walks that follow arcs *backwards*.  The paper states its walk machinery
//! (Sections III–IV) in terms of out-neighbors and is silent about the
//! transposition; we follow the standard convention and, by default, run the
//! walk machinery on the transposed graph so that Theorem 3 (degeneration to
//! classic SimRank when all probabilities are 1) holds exactly.  Use
//! [`WalkDirection::OutNeighbors`] to reproduce forward-walk behaviour.
//!
//! # Quick start
//!
//! ```
//! use ugraph::UncertainGraphBuilder;
//! use usim_core::{SimRankConfig, TwoPhaseEstimator, SimRankEstimator};
//!
//! // Vertices 0 and 1 share the uncertain in-neighbor 2, so they are similar.
//! let g = UncertainGraphBuilder::new(4)
//!     .arc(2, 0, 0.9)
//!     .arc(2, 1, 0.8)
//!     .arc(3, 2, 0.7)
//!     .arc(0, 3, 0.5)
//!     .build()
//!     .unwrap();
//! let config = SimRankConfig::default().with_samples(200).with_seed(7);
//! let mut estimator = TwoPhaseEstimator::new(&g, config);
//! let s = estimator.similarity(0, 1);
//! assert!(s > 0.0 && s <= 1.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod baseline;
pub mod bounds;
pub mod cached;
pub mod config;
pub mod deterministic;
pub mod du_et_al;
pub mod engine;
pub mod meeting;
pub mod parallel;
pub mod sampling;
pub mod sharded;
pub mod shared;
pub mod single_source;
pub mod speedup;
pub mod top_k;
pub mod two_phase;

pub use baseline::{BaselineEstimator, ExternalBaseline};
pub use bounds::{
    corollary1_error_bound, required_samples, theorem2_error_bound, theorem4_error_bound,
};
pub use cached::{config_fingerprint, CachedAnswer, CachedQueryEngine, QueryCache};
pub use config::{SamplerKind, SimRankConfig, WalkDirection};
pub use deterministic::{simrank_all_pairs, simrank_single_pair, DeterministicSimRank};
pub use du_et_al::DuEtAlEstimator;
pub use engine::{QueryEngine, QueryError};
pub use meeting::{combine_meeting_probabilities, MeetingProfile};
pub use parallel::{
    par_mean_similarity, par_scored_pairs, par_similarities, par_top_k_pairs, par_top_k_similar_to,
};
pub use sampling::SamplingEstimator;
pub use sharded::{CoalescedAnswer, CoalescedQuery, ShardInfo, ShardSpec, ShardedQueryEngine};
pub use shared::SharedQueryEngine;
pub use single_source::{SingleSourceEstimator, SingleSourceResult, SourceMode};
pub use speedup::SpeedupEstimator;
pub use top_k::{top_k_pairs, top_k_similar_to, ScoredPair, ScoredVertex};
pub use two_phase::TwoPhaseEstimator;
pub use usim_cache::CacheStats;

use ugraph::VertexId;

/// Common interface of all single-pair SimRank estimators, used by the
/// experiment harness, the case studies and the entity-resolution crate.
pub trait SimRankEstimator {
    /// Estimates the SimRank similarity `s(u, v)`.
    ///
    /// Estimators that use randomness carry their own seeded RNG, so the
    /// method takes `&mut self`; repeated calls with the same arguments may
    /// return different estimates for the sampling-based algorithms.
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64;

    /// A short human-readable name ("Baseline", "Sampling", "SR-TS", …).
    fn name(&self) -> &'static str;
}

impl<T: SimRankEstimator + ?Sized> SimRankEstimator for Box<T> {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        (**self).similarity(u, v)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use ugraph::UncertainGraphBuilder;

    #[test]
    fn boxed_estimators_satisfy_the_trait() {
        let graph = UncertainGraphBuilder::new(3)
            .arc(2, 0, 0.9)
            .arc(2, 1, 0.8)
            .build()
            .unwrap();
        let config = SimRankConfig::default().with_samples(50).with_seed(1);
        let mut boxed: Box<dyn SimRankEstimator> = Box::new(TwoPhaseEstimator::new(&graph, config));
        // The blanket impl lets a Box<dyn …> be used wherever a concrete
        // estimator is expected (e.g. the parallel batch helpers).
        fn score<E: SimRankEstimator>(estimator: &mut E) -> f64 {
            estimator.similarity(0, 1)
        }
        let s = score(&mut boxed);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(boxed.name(), "SR-TS");
    }
}
