//! The batch query engine: CSR-backed, thread-sharded, deterministic.
//!
//! The paper's evaluation — and any service built on these estimators —
//! issues *batches* of queries against one fixed graph.  [`QueryEngine`] is
//! the subsystem built for that workload:
//!
//! * the graph is converted **once** into a [`CsrGraph`] (flat
//!   `offsets`/`targets`/`probs` arrays with a transpose view), so no
//!   estimator ever materialises a transposed graph copy again;
//! * every worker thread owns a reusable [`WalkArena`], so sampling is
//!   allocation-free in steady state;
//! * every pair draws its randomness from a **pair-keyed RNG stream**
//!   (seeded from `(config.seed, u, v)`), so the result of a batch is
//!   *bit-identical* to looping [`QueryEngine::profile`] over the pairs
//!   sequentially — **regardless of the number of rayon threads** or how the
//!   batch is sharded across them.  This strengthens the 1-vs-N-thread
//!   determinism guarantee of [`crate::parallel`], whose `map_init` chunking
//!   makes randomised per-pair estimates depend on the work split.
//!
//! The engine implements the paper's Sampling algorithm (Section VI-B,
//! Fig. 4) per pair; the exact and two-phase algorithms keep their dedicated
//! estimators, which share the same CSR fast path for their sampling phases.

use crate::config::{SimRankConfig, WalkDirection};
use crate::meeting::MeetingProfile;
use crate::top_k::{ScoredPair, ScoredVertex};
use crate::SimRankEstimator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use rwalk::arena::{CsrSampler, WalkArena, DEAD};
use ugraph::{CsrGraph, CsrView, UncertainGraph, VertexId};

/// Derives the deterministic RNG seed of a pair `(u, v)` from the engine
/// seed: a SplitMix64 finalizer over the packed pair, xor-folded with the
/// engine seed.  Stable across runs, platforms and thread counts.
fn pair_seed(seed: u64, u: VertexId, v: VertexId) -> u64 {
    let mut z = (u as u64) << 32 | v as u64;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-worker scratch: one arena plus the two walk-position buffers.
/// Constructed once per rayon worker chunk, reused across that chunk's pairs.
#[derive(Debug, Default)]
struct Scratch {
    arena: WalkArena,
    walk_u: Vec<VertexId>,
    walk_v: Vec<VertexId>,
}

/// CSR-backed batch SimRank query engine (sampling estimator semantics).
///
/// Build it once per graph and issue any number of single-pair or batch
/// queries; the engine is immutable after construction (`&self` queries), so
/// it can be shared across threads freely.
///
/// # Example
///
/// ```
/// use ugraph::UncertainGraphBuilder;
/// use usim_core::{QueryEngine, SimRankConfig};
///
/// let g = UncertainGraphBuilder::new(4)
///     .arc(2, 0, 0.9)
///     .arc(2, 1, 0.8)
///     .arc(3, 2, 0.7)
///     .build()
///     .unwrap();
/// let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(200));
/// let batch = engine.batch_similarities(&[(0, 1), (1, 2)]);
/// // Batch output is bit-identical to sequential per-pair queries.
/// assert_eq!(batch[0], engine.similarity(0, 1));
/// assert_eq!(batch[1], engine.similarity(1, 2));
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    csr: CsrGraph,
    config: SimRankConfig,
}

impl QueryEngine {
    /// Builds the engine for `graph` under `config`.  The CSR representation
    /// (both directions) is materialised here, once; queries never touch the
    /// original graph again.
    pub fn new(graph: &UncertainGraph, config: SimRankConfig) -> Self {
        config.validate();
        QueryEngine {
            csr: CsrGraph::from_uncertain(graph),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimRankConfig {
        &self.config
    }

    /// The CSR representation the engine walks.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// The direction-resolved view walks run on: the reverse (transpose)
    /// view for the SimRank convention of in-neighbor walks, the forward
    /// view for [`WalkDirection::OutNeighbors`].
    #[inline]
    fn view(&self) -> CsrView<'_> {
        match self.config.direction {
            WalkDirection::InNeighbors => self.csr.reverse(),
            WalkDirection::OutNeighbors => self.csr.forward(),
        }
    }

    /// Estimated meeting probabilities `m̂(0), …, m̂(n)` of one pair, using
    /// the pair's own deterministic RNG stream.
    ///
    /// Repeated calls with the same pair return identical profiles (the
    /// stream is keyed on `(seed, u, v)`, not on call order), and a batch
    /// query over pairs containing `(u, v)` returns this exact profile for
    /// that entry.
    pub fn profile(&self, u: VertexId, v: VertexId) -> MeetingProfile {
        self.profile_with(&mut Scratch::default(), u, v)
    }

    /// Estimated SimRank `s⁽ⁿ⁾(u, v)` (the combination of
    /// [`QueryEngine::profile`] under Eq. 12).
    pub fn similarity(&self, u: VertexId, v: VertexId) -> f64 {
        self.profile(u, v).score()
    }

    fn profile_with(&self, scratch: &mut Scratch, u: VertexId, v: VertexId) -> MeetingProfile {
        let num_vertices = self.num_vertices();
        assert!(
            (u as usize) < num_vertices && (v as usize) < num_vertices,
            "query pair ({u}, {v}) out of range (graph has {num_vertices} vertices)"
        );
        let n = self.config.horizon;
        let num_samples = self.config.num_samples;
        let view = self.view();
        let sampler = CsrSampler::new(view);
        let mut rng = StdRng::seed_from_u64(pair_seed(self.config.seed, u, v));
        let mut meeting = vec![0.0f64; n + 1];
        meeting[0] = if u == v { 1.0 } else { 0.0 };
        for _ in 0..num_samples {
            sampler.sample_walk_into(&mut scratch.arena, u, n, &mut rng, &mut scratch.walk_u);
            sampler.sample_walk_into(&mut scratch.arena, v, n, &mut rng, &mut scratch.walk_v);
            for (k, slot) in meeting.iter_mut().enumerate().take(n + 1).skip(1) {
                let a = scratch.walk_u[k];
                if a != DEAD && a == scratch.walk_v[k] {
                    *slot += 1.0;
                }
            }
        }
        for slot in meeting.iter_mut().skip(1) {
            *slot /= num_samples as f64;
        }
        MeetingProfile::new(meeting, self.config.decay)
    }

    /// Meeting profiles for a batch of pairs, sharded across rayon workers
    /// (one [`WalkArena`] per worker), in input order.
    ///
    /// Bit-identical to `pairs.iter().map(|&(u, v)| self.profile(u, v))` at
    /// any thread count.
    pub fn batch_profile(&self, pairs: &[(VertexId, VertexId)]) -> Vec<MeetingProfile> {
        pairs
            .par_iter()
            .map_init(Scratch::default, |scratch, &(u, v)| {
                self.profile_with(scratch, u, v)
            })
            .collect()
    }

    /// SimRank scores for a batch of pairs, in input order.  Bit-identical
    /// to sequential [`QueryEngine::similarity`] calls at any thread count.
    pub fn batch_similarities(&self, pairs: &[(VertexId, VertexId)]) -> Vec<f64> {
        pairs
            .par_iter()
            .map_init(Scratch::default, |scratch, &(u, v)| {
                self.profile_with(scratch, u, v).score()
            })
            .collect()
    }

    /// The `k` highest-scoring pairs among `pairs`: self-pairs are skipped,
    /// each unordered pair is evaluated once, ties break by pair id.
    /// Deterministic at any thread count (unlike
    /// [`crate::par_top_k_pairs`] with randomised estimators).
    pub fn batch_top_k(&self, pairs: &[(VertexId, VertexId)], k: usize) -> Vec<ScoredPair> {
        let mut unique: Vec<(VertexId, VertexId)> = pairs
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        unique.sort_unstable();
        unique.dedup();
        let scores = self.batch_similarities(&unique);
        let mut scored: Vec<ScoredPair> = unique
            .into_iter()
            .zip(scores)
            .map(|(pair, score)| ScoredPair { pair, score })
            .collect();
        crate::top_k::sort_descending_by_score(
            &mut scored,
            |s| s.score,
            |s| (s.pair.0 as u64) << 32 | s.pair.1 as u64,
        );
        scored.truncate(k);
        scored
    }

    /// The `k` candidates most similar to `query` (the query vertex itself
    /// and duplicate candidates are skipped), evaluated as one batch.
    pub fn batch_top_k_similar_to(
        &self,
        query: VertexId,
        candidates: &[VertexId],
        k: usize,
    ) -> Vec<ScoredVertex> {
        let mut unique: Vec<VertexId> =
            candidates.iter().copied().filter(|&v| v != query).collect();
        unique.sort_unstable();
        unique.dedup();
        let pairs: Vec<(VertexId, VertexId)> = unique.iter().map(|&v| (query, v)).collect();
        let scores = self.batch_similarities(&pairs);
        let mut scored: Vec<ScoredVertex> = unique
            .into_iter()
            .zip(scores)
            .map(|(vertex, score)| ScoredVertex { vertex, score })
            .collect();
        crate::top_k::sort_descending_by_score(&mut scored, |s| s.score, |s| s.vertex as u64);
        scored.truncate(k);
        scored
    }
}

impl SimRankEstimator for QueryEngine {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        QueryEngine::similarity(self, u, v)
    }

    fn name(&self) -> &'static str {
        "QueryEngine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEstimator;
    use rayon::ThreadPoolBuilder;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    fn all_ordered_pairs(n: u32) -> Vec<(VertexId, VertexId)> {
        (0..n).flat_map(|u| (0..n).map(move |v| (u, v))).collect()
    }

    #[test]
    fn batch_equals_sequential_bit_for_bit() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(300).with_seed(7));
        let pairs = all_ordered_pairs(5);
        let batch = engine.batch_similarities(&pairs);
        let sequential: Vec<f64> = pairs
            .iter()
            .map(|&(u, v)| engine.similarity(u, v))
            .collect();
        assert_eq!(batch, sequential);
        let profiles = engine.batch_profile(&pairs);
        for (profile, &(u, v)) in profiles.iter().zip(&pairs) {
            assert_eq!(profile, &engine.profile(u, v));
        }
    }

    #[test]
    fn batch_results_are_thread_count_invariant() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(200).with_seed(3));
        let pairs = all_ordered_pairs(5);
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let many = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let a = single.install(|| engine.batch_similarities(&pairs));
        let b = many.install(|| engine.batch_similarities(&pairs));
        assert_eq!(a, b, "pair-keyed RNG streams must make sharding invisible");
    }

    #[test]
    fn estimates_are_close_to_the_exact_baseline() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(4000).with_seed(17);
        let baseline = BaselineEstimator::new(&g, config);
        let engine = QueryEngine::new(&g, config);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (0, 3), (3, 4)] {
            let exact = baseline.try_similarity(u, v).unwrap();
            let estimate = engine.similarity(u, v);
            assert!(
                (exact - estimate).abs() < 0.03,
                "pair ({u},{v}): exact {exact}, engine {estimate}"
            );
        }
    }

    #[test]
    fn repeated_queries_and_duplicate_batch_entries_are_identical() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(100).with_seed(9));
        assert_eq!(engine.similarity(0, 1), engine.similarity(0, 1));
        let batch = engine.batch_similarities(&[(0, 1), (2, 3), (0, 1)]);
        assert_eq!(batch[0], batch[2]);
    }

    #[test]
    fn different_pairs_use_different_streams() {
        // (u, v) and (v, u) are distinct streams; both estimate the same
        // symmetric quantity but need not be bit-equal.
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(2000).with_seed(5));
        let ab = engine.similarity(0, 1);
        let ba = engine.similarity(1, 0);
        assert!((ab - ba).abs() < 0.05, "symmetric in expectation");
        assert_ne!(
            pair_seed(5, 0, 1),
            pair_seed(5, 1, 0),
            "pair seeds are order-sensitive"
        );
    }

    #[test]
    fn seed_changes_the_whole_batch() {
        let g = fig1_graph();
        let pairs = all_ordered_pairs(5);
        let a = QueryEngine::new(&g, SimRankConfig::default().with_samples(50).with_seed(1))
            .batch_similarities(&pairs);
        let b = QueryEngine::new(&g, SimRankConfig::default().with_samples(50).with_seed(2))
            .batch_similarities(&pairs);
        assert_ne!(a, b);
    }

    #[test]
    fn top_k_pairs_dedupes_ranks_and_truncates() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(400).with_seed(11));
        let pairs = vec![(0u32, 1u32), (1, 0), (2, 3), (0, 2), (4, 4), (3, 2)];
        let top = engine.batch_top_k(&pairs, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        for scored in &top {
            assert!([(0, 1), (2, 3), (0, 2)].contains(&scored.pair));
        }
    }

    #[test]
    fn top_k_similar_to_excludes_query_and_sorts() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(400).with_seed(13));
        let candidates: Vec<VertexId> = vec![0, 1, 2, 3, 4, 4, 1];
        let top = engine.batch_top_k_similar_to(1, &candidates, 3);
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|s| s.vertex != 1));
        for window in top.windows(2) {
            assert!(window[0].score >= window[1].score);
        }
    }

    #[test]
    fn trait_impl_matches_inherent_method() {
        let g = fig1_graph();
        let mut engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(100));
        let via_inherent = QueryEngine::similarity(&engine, 2, 3);
        let via_trait = SimRankEstimator::similarity(&mut engine, 2, 3);
        assert_eq!(via_inherent, via_trait);
        assert_eq!(engine.name(), "QueryEngine");
        assert_eq!(engine.num_vertices(), 5);
        assert_eq!(engine.csr().num_arcs(), 8);
        assert_eq!(engine.config().num_samples, 100);
    }

    #[test]
    fn empty_batch_is_fine() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(10));
        assert!(engine.batch_similarities(&[]).is_empty());
        assert!(engine.batch_profile(&[]).is_empty());
        assert!(engine.batch_top_k(&[], 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pair_panics() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default());
        let _ = engine.similarity(0, 99);
    }
}
