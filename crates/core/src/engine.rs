//! The batch query engine: CSR-backed, thread-sharded, deterministic — and
//! dynamic.
//!
//! The paper's evaluation — and any service built on these estimators —
//! issues *batches* of queries against one graph.  [`QueryEngine`] is the
//! subsystem built for that workload:
//!
//! * the graph is converted **once** into a [`CsrGraph`] base wrapped in a
//!   [`DeltaOverlay`], so no estimator ever materialises a transposed graph
//!   copy again, and [`QueryEngine::apply_updates`] mutates the live graph
//!   (arc insertions, deletions, probability changes) without rebuilding the
//!   engine — the overlay compacts itself back into a fresh CSR once churn
//!   crosses its [`CompactionPolicy`] threshold;
//! * every worker draws its scratch (a [`WalkArena`] plus walk buffers) from
//!   a pool owned by the engine, so sampling is allocation-free in steady
//!   state *across* batches; applying updates bumps every pooled arena's
//!   epoch ([`WalkArena::invalidate`]), discarding all memoized arc
//!   instantiations without reallocating a single buffer;
//! * every pair draws its randomness from a **pair-keyed RNG stream**
//!   (seeded from `(config.seed, u, v)`), so the result of a batch is
//!   *bit-identical* to looping [`QueryEngine::profile`] over the pairs
//!   sequentially — **regardless of the number of rayon threads** or how the
//!   batch is sharded across them.  Because overlay reads return the
//!   identical base slices for untouched vertices, this determinism also
//!   survives updates: an engine that applied updates returns bit-identical
//!   scores to a fresh engine built on the mutated graph.
//!
//! Batch entry points validate every vertex id up front and return a typed
//! [`QueryError`] instead of panicking deep inside the CSR arrays — ids
//! arriving from pair files or network requests are input, not invariants.
//!
//! The engine implements the paper's Sampling algorithm (Section VI-B,
//! Fig. 4) per pair; the exact and two-phase algorithms keep their dedicated
//! estimators, which share the same CSR fast path for their sampling phases.

use crate::config::{SamplerKind, SimRankConfig, WalkDirection};
use crate::meeting::MeetingProfile;
use crate::top_k::{ScoredPair, ScoredVertex};
use crate::SimRankEstimator;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use rwalk::arena::{AliasSampler, CsrSampler, WalkArena, DEAD};
use std::fmt;
use ugraph::{
    CompactionPolicy, CsrGraph, DeltaOverlay, GraphUpdate, OverlayAliasView, OverlayView,
    UncertainGraph, UpdateError, UpdateSummary, VertexFootprint, VertexId,
};

/// Derives the deterministic RNG seed of a pair `(u, v)` from the engine
/// seed: a SplitMix64 finalizer over the packed pair, xor-folded with the
/// engine seed.  Stable across runs, platforms and thread counts.
fn pair_seed(seed: u64, u: VertexId, v: VertexId) -> u64 {
    let mut z = (u as u64) << 32 | v as u64;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why a batch query was rejected before any walk was sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// A query referenced a vertex id `>= num_vertices`.  Out-of-range ids
    /// in a pairs file used to panic deep inside the CSR offset arrays; the
    /// batch entry points now reject them up front.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices of the engine's graph.
        num_vertices: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "query references vertex {vertex}, but the graph has {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Per-worker scratch: one arena plus the two walk-position buffers.
/// Checked out of the engine's [`ScratchPool`] for the duration of one query
/// (or one worker's chunk of a batch) and returned afterwards, so buffers
/// are reused across batches, not just within one.
#[derive(Debug, Default)]
struct Scratch {
    arena: WalkArena,
    walk_u: Vec<VertexId>,
    walk_v: Vec<VertexId>,
}

/// A lock-protected free list of [`Scratch`] instances.  Checkout pops (or
/// creates) a scratch; drop of the guard pushes it back.  The lock is taken
/// once per worker chunk, not per pair, so contention is negligible.
#[derive(Default)]
struct ScratchPool {
    free: Mutex<Vec<Scratch>>,
}

impl ScratchPool {
    fn checkout(&self) -> PooledScratch<'_> {
        let scratch = self.free.lock().pop().unwrap_or_default();
        PooledScratch {
            pool: self,
            scratch: Some(scratch),
        }
    }
}

impl fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchPool")
            .field("pooled", &self.free.lock().len())
            .finish()
    }
}

/// RAII checkout of a [`Scratch`] from a [`ScratchPool`].
struct PooledScratch<'p> {
    pool: &'p ScratchPool,
    scratch: Option<Scratch>,
}

impl PooledScratch<'_> {
    fn get_mut(&mut self) -> &mut Scratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.free.lock().push(scratch);
        }
    }
}

/// CSR-backed batch SimRank query engine (sampling estimator semantics) over
/// a live, updatable graph.
///
/// Build it once per graph and issue any number of single-pair or batch
/// queries (`&self`, freely shared across threads); apply
/// [`GraphUpdate`] batches through [`QueryEngine::apply_updates`] (`&mut
/// self`) to mutate the graph in place without rebuilding the engine.
///
/// # Example
///
/// ```
/// use ugraph::{GraphUpdate, UncertainGraphBuilder};
/// use usim_core::{QueryEngine, SimRankConfig};
///
/// let g = UncertainGraphBuilder::new(4)
///     .arc(2, 0, 0.9)
///     .arc(2, 1, 0.8)
///     .arc(3, 2, 0.7)
///     .build()
///     .unwrap();
/// let mut engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(200));
/// let batch = engine.batch_similarities(&[(0, 1), (1, 2)]).unwrap();
/// // Batch output is bit-identical to sequential per-pair queries.
/// assert_eq!(batch[0], engine.similarity(0, 1));
/// assert_eq!(batch[1], engine.similarity(1, 2));
///
/// // The graph is live: re-weight an arc and query again, same engine.
/// engine
///     .apply_updates(&[GraphUpdate::SetProbability { source: 2, target: 0, probability: 0.1 }])
///     .unwrap();
/// assert_ne!(engine.similarity(0, 1), batch[0]);
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    graph: DeltaOverlay,
    config: SimRankConfig,
    /// Bumped on every applied update batch; exposed for observability and
    /// used to reason about arena invalidation.
    epoch: u64,
    scratch: ScratchPool,
}

impl QueryEngine {
    /// Builds the engine for `graph` under `config`.  The CSR representation
    /// (both directions) is materialised here, once; queries never touch the
    /// original graph again.
    pub fn new(graph: &UncertainGraph, config: SimRankConfig) -> Self {
        Self::from_overlay(DeltaOverlay::from_graph(graph), config)
    }

    /// Builds the engine directly on an already-compiled [`CsrGraph`] — the
    /// snapshot boot path: no per-edge validation, sorting or CSR rebuild
    /// happens here, so booting from a [`ugraph::snapshot`] is O(read) while
    /// [`QueryEngine::new`] is O(parse + compile).
    ///
    /// Answers are bit-identical to an engine built with
    /// [`QueryEngine::new`] on the graph the CSR was compiled from: walks
    /// only ever see the CSR arrays, and the RNG streams are keyed on
    /// `(seed, u, v)`, not on how the arrays came to be in memory.
    ///
    /// Under [`SamplerKind::Alias`] a CSR that already carries alias tables
    /// (loaded from a snapshot with the alias sections) boots without any
    /// table construction; one without them gets its tables rebuilt here, so
    /// older snapshots keep working.
    pub fn from_csr(csr: CsrGraph, config: SimRankConfig) -> Self {
        Self::from_overlay(DeltaOverlay::new(csr), config)
    }

    fn from_overlay(mut graph: DeltaOverlay, config: SimRankConfig) -> Self {
        config.validate();
        if config.sampler == SamplerKind::Alias {
            // No-op when the base already carries tables (snapshot boot).
            graph.build_alias_tables();
        }
        QueryEngine {
            graph,
            config,
            epoch: 0,
            scratch: ScratchPool::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimRankConfig {
        &self.config
    }

    /// The live graph: CSR base plus pending deltas.
    pub fn graph(&self) -> &DeltaOverlay {
        &self.graph
    }

    /// The compacted CSR base the engine walks.  After
    /// [`QueryEngine::apply_updates`] and before the next compaction this
    /// does **not** include pending deltas; use [`QueryEngine::graph`] for
    /// the live adjacency.
    pub fn csr(&self) -> &CsrGraph {
        self.graph.base()
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of live arcs (base arcs plus inserts minus deletes).
    pub fn num_arcs(&self) -> usize {
        self.graph.num_arcs()
    }

    /// How many update batches this engine has applied.
    pub fn update_epoch(&self) -> u64 {
        self.epoch
    }

    /// Replaces the overlay's compaction policy (takes effect on the next
    /// [`QueryEngine::apply_updates`]).
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.graph.set_compaction_policy(policy);
    }

    /// Materialises the live graph as an [`UncertainGraph`] snapshot.
    pub fn snapshot(&self) -> UncertainGraph {
        self.graph.to_uncertain()
    }

    /// Applies a batch of graph updates atomically: the batch is validated
    /// first and an `Err` leaves the engine untouched.
    ///
    /// On success the live views serve the new adjacency immediately, the
    /// update epoch is bumped, and every pooled worker arena is invalidated
    /// in O(1) ([`WalkArena::invalidate`]) — memoized arc instantiations
    /// recorded against the old graph are unreachable without a single
    /// buffer being reallocated.  When accumulated churn crosses the
    /// overlay's [`CompactionPolicy`] threshold the deltas are folded back
    /// into a fresh CSR base (reported in the returned
    /// [`UpdateSummary::compacted`]).
    ///
    /// Determinism: after any sequence of updates the engine's scores are
    /// bit-identical to those of a fresh engine built on the mutated graph
    /// with the same config.
    ///
    /// # Example
    ///
    /// ```
    /// use ugraph::{GraphUpdate, UncertainGraphBuilder, UpdateError};
    /// use usim_core::{QueryEngine, SimRankConfig};
    ///
    /// let g = UncertainGraphBuilder::new(3)
    ///     .arc(2, 0, 0.9)
    ///     .arc(2, 1, 0.8)
    ///     .build()
    ///     .unwrap();
    /// let mut engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(100));
    /// let summary = engine
    ///     .apply_updates(&[
    ///         GraphUpdate::InsertArc { source: 0, target: 1, probability: 0.5 },
    ///         GraphUpdate::SetProbability { source: 2, target: 0, probability: 0.4 },
    ///     ])
    ///     .unwrap();
    /// assert_eq!((summary.inserted, summary.reweighted), (1, 1));
    /// assert_eq!(engine.update_epoch(), 1);
    ///
    /// // Batches are atomic: one bad update rejects the whole batch and
    /// // leaves the engine untouched.
    /// let err = engine
    ///     .apply_updates(&[
    ///         GraphUpdate::DeleteArc { source: 0, target: 1 },
    ///         GraphUpdate::DeleteArc { source: 1, target: 0 }, // no such arc
    ///     ])
    ///     .unwrap_err();
    /// assert_eq!(err, UpdateError::ArcNotFound { source: 1, target: 0 });
    /// assert_eq!(engine.update_epoch(), 1);
    /// assert_eq!(engine.num_arcs(), 3);
    /// ```
    pub fn apply_updates(&mut self, updates: &[GraphUpdate]) -> Result<UpdateSummary, UpdateError> {
        let summary = self.graph.apply_all(updates)?;
        if summary.compacted {
            usim_obs::walk_metrics().count_compaction();
        }
        self.epoch += 1;
        for scratch in self.scratch.free.get_mut().iter_mut() {
            scratch.arena.invalidate();
        }
        Ok(summary)
    }

    /// The direction-resolved live view walks run on: the reverse
    /// (transpose) view for the SimRank convention of in-neighbor walks, the
    /// forward view for [`WalkDirection::OutNeighbors`].
    #[inline]
    fn view(&self) -> OverlayView<'_> {
        match self.config.direction {
            WalkDirection::InNeighbors => self.graph.reverse(),
            WalkDirection::OutNeighbors => self.graph.forward(),
        }
    }

    /// The direction-resolved alias-table view of the live graph; only
    /// meaningful under [`SamplerKind::Alias`], whose constructors build the
    /// tables up front.
    #[inline]
    fn alias_view(&self) -> OverlayAliasView<'_> {
        match self.config.direction {
            WalkDirection::InNeighbors => self.graph.reverse_alias(),
            WalkDirection::OutNeighbors => self.graph.forward_alias(),
        }
        .expect("alias tables are built at engine construction under SamplerKind::Alias")
    }

    /// Validates every id of a batch against the graph, so the hot path can
    /// index the CSR arrays unchecked.  Public so wrappers that answer part
    /// of a batch from elsewhere (the caching layer) can keep the engine's
    /// reject-the-whole-batch-up-front semantics without computing anything.
    pub fn validate_vertices(
        &self,
        ids: impl IntoIterator<Item = VertexId>,
    ) -> Result<(), QueryError> {
        let num_vertices = self.num_vertices();
        for vertex in ids {
            if (vertex as usize) >= num_vertices {
                return Err(QueryError::VertexOutOfRange {
                    vertex,
                    num_vertices,
                });
            }
        }
        Ok(())
    }

    /// Estimated meeting probabilities `m̂(0), …, m̂(n)` of one pair, using
    /// the pair's own deterministic RNG stream.
    ///
    /// Repeated calls with the same pair return identical profiles (the
    /// stream is keyed on `(seed, u, v)`, not on call order), and a batch
    /// query over pairs containing `(u, v)` returns this exact profile for
    /// that entry.
    ///
    /// # Panics
    ///
    /// Panics when `u` or `v` is out of range; use [`QueryEngine::try_profile`]
    /// for unvalidated input.
    ///
    /// # Example
    ///
    /// ```
    /// use ugraph::UncertainGraphBuilder;
    /// use usim_core::{QueryEngine, SimRankConfig};
    ///
    /// let g = UncertainGraphBuilder::new(3)
    ///     .arc(2, 0, 0.9)
    ///     .arc(2, 1, 0.8)
    ///     .build()
    ///     .unwrap();
    /// let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(500));
    /// let profile = engine.profile(0, 1);
    /// // One meeting probability per step 0..=n, combined under Eq. 12.
    /// assert_eq!(profile.meeting.len(), engine.config().horizon + 1);
    /// assert_eq!(profile.score(), engine.similarity(0, 1));
    /// // Streams are pair-keyed: repeating the call replays the estimate.
    /// assert_eq!(profile, engine.profile(0, 1));
    /// ```
    pub fn profile(&self, u: VertexId, v: VertexId) -> MeetingProfile {
        let mut scratch = self.scratch.checkout();
        self.profile_with(scratch.get_mut(), u, v, None)
    }

    /// [`QueryEngine::profile`] plus the walk footprint: a
    /// [`VertexFootprint`] covering every vertex either walk visited across
    /// all samples.  The profile is **bit-identical** to the untraced call —
    /// footprint capture reads the sampler's positions buffers after each
    /// walk returns and never touches the RNG stream.  The footprint is
    /// what the caching layer stores alongside the answer so
    /// [`usim_cache::ResultCache::revalidate`] can re-stamp the entry across
    /// update rounds that touch none of these vertices.
    pub fn profile_traced(&self, u: VertexId, v: VertexId) -> (MeetingProfile, VertexFootprint) {
        let mut scratch = self.scratch.checkout();
        let mut footprint = VertexFootprint::new();
        let profile = self.profile_with(scratch.get_mut(), u, v, Some(&mut footprint));
        (profile, footprint)
    }

    /// Fallible [`QueryEngine::profile`]: out-of-range ids are a typed
    /// [`QueryError`] instead of a panic.
    pub fn try_profile(&self, u: VertexId, v: VertexId) -> Result<MeetingProfile, QueryError> {
        self.validate_vertices([u, v])?;
        Ok(self.profile(u, v))
    }

    /// Estimated SimRank `s⁽ⁿ⁾(u, v)` (the combination of
    /// [`QueryEngine::profile`] under Eq. 12).
    ///
    /// # Panics
    ///
    /// Panics when `u` or `v` is out of range; use
    /// [`QueryEngine::try_similarity`] for unvalidated input.
    pub fn similarity(&self, u: VertexId, v: VertexId) -> f64 {
        self.profile(u, v).score()
    }

    /// Fallible [`QueryEngine::similarity`]: out-of-range ids are a typed
    /// [`QueryError`] instead of a panic.
    pub fn try_similarity(&self, u: VertexId, v: VertexId) -> Result<f64, QueryError> {
        Ok(self.try_profile(u, v)?.score())
    }

    /// The walk loop shared by every query path.  When `trace` is provided,
    /// the positions buffers of both walks are folded into it after each
    /// `sample_walk_into` returns — capture reads state the sampler already
    /// wrote and consumes **zero** RNG draws, so traced and untraced calls
    /// are bit-identical (pinned by the sampler tests in
    /// `rwalk::footprint`).
    fn profile_with(
        &self,
        scratch: &mut Scratch,
        u: VertexId,
        v: VertexId,
        mut trace: Option<&mut VertexFootprint>,
    ) -> MeetingProfile {
        let num_vertices = self.num_vertices();
        assert!(
            (u as usize) < num_vertices && (v as usize) < num_vertices,
            "query pair ({u}, {v}) out of range (graph has {num_vertices} vertices)"
        );
        let n = self.config.horizon;
        let num_samples = self.config.num_samples;
        let mut rng = StdRng::seed_from_u64(pair_seed(self.config.seed, u, v));
        let mut meeting = vec![0.0f64; n + 1];
        meeting[0] = if u == v { 1.0 } else { 0.0 };
        // Walk metrics are derived from the positions buffers the samplers
        // already wrote — like footprint capture, the tally consumes zero
        // RNG draws and never branches on sampled values, so metered and
        // unmetered calls are bit-identical.  One relaxed load per query
        // when metering is off.
        let metered = usim_obs::walk_metrics().enabled();
        let mut tally = usim_obs::WalkTally::default();
        match self.config.sampler {
            SamplerKind::Legacy => {
                let sampler = CsrSampler::new(self.view());
                for _ in 0..num_samples {
                    sampler.sample_walk_into(
                        &mut scratch.arena,
                        u,
                        n,
                        &mut rng,
                        &mut scratch.walk_u,
                    );
                    sampler.sample_walk_into(
                        &mut scratch.arena,
                        v,
                        n,
                        &mut rng,
                        &mut scratch.walk_v,
                    );
                    if let Some(fp) = trace.as_deref_mut() {
                        rwalk::footprint::record_walk(fp, &scratch.walk_u);
                        rwalk::footprint::record_walk(fp, &scratch.walk_v);
                    }
                    if metered {
                        tally_pair_walks(
                            &mut tally,
                            &scratch.walk_u,
                            &scratch.walk_v,
                            &self.view(),
                            self.config.sampler,
                        );
                    }
                    count_meetings(&mut meeting, &scratch.walk_u, &scratch.walk_v);
                }
            }
            SamplerKind::Alias => {
                let sampler = AliasSampler::new(self.alias_view());
                for _ in 0..num_samples {
                    sampler.sample_walk_into(u, n, &mut rng, &mut scratch.walk_u);
                    sampler.sample_walk_into(v, n, &mut rng, &mut scratch.walk_v);
                    if let Some(fp) = trace.as_deref_mut() {
                        rwalk::footprint::record_walk(fp, &scratch.walk_u);
                        rwalk::footprint::record_walk(fp, &scratch.walk_v);
                    }
                    if metered {
                        tally_pair_walks(
                            &mut tally,
                            &scratch.walk_u,
                            &scratch.walk_v,
                            &self.view(),
                            self.config.sampler,
                        );
                    }
                    count_meetings(&mut meeting, &scratch.walk_u, &scratch.walk_v);
                }
            }
        }
        if metered {
            usim_obs::walk_metrics().flush(&tally);
        }
        for slot in meeting.iter_mut().skip(1) {
            *slot /= num_samples as f64;
        }
        MeetingProfile::new(meeting, self.config.decay)
    }

    /// Shards `pairs` across rayon workers (one pooled scratch per worker
    /// chunk) and maps `f` over them, in input order.
    fn par_map_pairs<R: Send>(
        &self,
        pairs: &[(VertexId, VertexId)],
        f: impl Fn(&mut Scratch, VertexId, VertexId) -> R + Sync,
    ) -> Vec<R> {
        pairs
            .par_iter()
            .map_init(
                || self.scratch.checkout(),
                |scratch, &(u, v)| f(scratch.get_mut(), u, v),
            )
            .collect()
    }

    /// Computes `f` once per *distinct* pair and scatters the results back
    /// to input order.  A batch with repeated pairs (hot pairs in serving
    /// traffic, symmetric pair files) samples each distinct pair's walks
    /// once instead of once per occurrence; because every pair draws from
    /// its own `(seed, u, v)`-keyed RNG stream, duplicates were bit-equal
    /// anyway, so the output is unchanged — only cheaper.
    fn par_map_distinct<R: Clone + Send>(
        &self,
        pairs: &[(VertexId, VertexId)],
        f: impl Fn(&mut Scratch, VertexId, VertexId) -> R + Sync,
    ) -> Vec<R> {
        let (distinct, slots) = dedup_pairs(pairs);
        if distinct.len() == pairs.len() {
            // No duplicates: skip the scatter pass entirely.
            return self.par_map_pairs(pairs, f);
        }
        let results = self.par_map_pairs(&distinct, f);
        slots
            .into_iter()
            .map(|slot| results[slot].clone())
            .collect()
    }

    /// Meeting profiles for a batch of pairs, sharded across rayon workers
    /// (one pooled [`WalkArena`] per worker), in input order.  Repeated
    /// pairs are sampled once and their profile is replicated (pair-keyed
    /// RNG streams make the copies bit-equal to recomputation).
    ///
    /// Bit-identical to `pairs.iter().map(|&(u, v)| self.profile(u, v))` at
    /// any thread count.  Every id is validated up front: an out-of-range id
    /// anywhere in the batch returns [`QueryError::VertexOutOfRange`] before
    /// any walk is sampled.
    pub fn batch_profile(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Vec<MeetingProfile>, QueryError> {
        self.validate_vertices(pairs.iter().flat_map(|&(u, v)| [u, v]))?;
        Ok(self.par_map_distinct(pairs, |scratch, u, v| {
            self.profile_with(scratch, u, v, None)
        }))
    }

    /// SimRank scores for a batch of pairs, in input order.  Bit-identical
    /// to sequential [`QueryEngine::similarity`] calls at any thread count;
    /// out-of-range ids are rejected up front like
    /// [`QueryEngine::batch_profile`], and repeated pairs are sampled once
    /// (their scores were bit-equal anyway — see
    /// [`QueryEngine::batch_profile`]).
    ///
    /// # Example
    ///
    /// ```
    /// use ugraph::UncertainGraphBuilder;
    /// use usim_core::{QueryEngine, QueryError, SimRankConfig};
    ///
    /// let g = UncertainGraphBuilder::new(3)
    ///     .arc(2, 0, 0.9)
    ///     .arc(2, 1, 0.8)
    ///     .build()
    ///     .unwrap();
    /// let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(200));
    /// let scores = engine.batch_similarities(&[(0, 1), (1, 2)]).unwrap();
    /// // Sharding is invisible: the batch equals the sequential loop.
    /// assert_eq!(scores[0], engine.similarity(0, 1));
    /// assert_eq!(scores[1], engine.similarity(1, 2));
    ///
    /// // Ids are validated up front — a typed error, not a panic.
    /// assert_eq!(
    ///     engine.batch_similarities(&[(0, 9)]).unwrap_err(),
    ///     QueryError::VertexOutOfRange { vertex: 9, num_vertices: 3 }
    /// );
    /// ```
    pub fn batch_similarities(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Vec<f64>, QueryError> {
        self.validate_vertices(pairs.iter().flat_map(|&(u, v)| [u, v]))?;
        Ok(self.par_map_distinct(pairs, |scratch, u, v| {
            self.profile_with(scratch, u, v, None).score()
        }))
    }

    /// [`QueryEngine::batch_similarities`] plus one walk footprint per pair.
    /// Scores are bit-identical to the untraced batch (and hence to
    /// sequential [`QueryEngine::similarity`] calls) at any thread count;
    /// repeated pairs share one computation and replicate both score and
    /// footprint.  This is the miss path of the caching layer: each
    /// `(score, footprint)` is inserted via
    /// [`usim_cache::ResultCache::insert_with_footprint`].
    pub fn batch_similarities_traced(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Vec<(f64, VertexFootprint)>, QueryError> {
        self.validate_vertices(pairs.iter().flat_map(|&(u, v)| [u, v]))?;
        Ok(self.par_map_distinct(pairs, |scratch, u, v| {
            let mut footprint = VertexFootprint::new();
            let score = self
                .profile_with(scratch, u, v, Some(&mut footprint))
                .score();
            (score, footprint)
        }))
    }

    /// The `k` highest-scoring pairs among `pairs`: self-pairs are skipped,
    /// each unordered pair is evaluated once, ties break by pair id.
    /// Deterministic at any thread count (unlike
    /// [`crate::par_top_k_pairs`] with randomised estimators).
    ///
    /// `k` semantics are explicit: `k == 0` returns an empty vector without
    /// evaluating anything, and `k` larger than the number of distinct
    /// non-self pairs returns all of them, sorted.
    ///
    /// # Example
    ///
    /// ```
    /// use ugraph::UncertainGraphBuilder;
    /// use usim_core::{QueryEngine, SimRankConfig};
    ///
    /// let g = UncertainGraphBuilder::new(4)
    ///     .arc(2, 0, 0.9)
    ///     .arc(2, 1, 0.8)
    ///     .arc(3, 2, 0.7)
    ///     .build()
    ///     .unwrap();
    /// let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(300));
    /// // Self-pairs are skipped, (u, v) and (v, u) are the same candidate.
    /// let top = engine
    ///     .batch_top_k(&[(0, 1), (1, 0), (2, 3), (3, 3)], 10)
    ///     .unwrap();
    /// assert_eq!(top.len(), 2);
    /// assert!(top[0].score >= top[1].score);
    /// assert!(engine.batch_top_k(&[(0, 1)], 0).unwrap().is_empty());
    /// ```
    pub fn batch_top_k(
        &self,
        pairs: &[(VertexId, VertexId)],
        k: usize,
    ) -> Result<Vec<ScoredPair>, QueryError> {
        self.validate_vertices(pairs.iter().flat_map(|&(u, v)| [u, v]))?;
        rank_pairs(pairs, k, |unique| self.batch_similarities(unique))
    }

    /// The `k` candidates most similar to `query` (the query vertex itself
    /// and duplicate candidates are skipped), evaluated as one batch.
    ///
    /// `k` follows the same explicit semantics as
    /// [`QueryEngine::batch_top_k`]: `0` is empty, larger than the distinct
    /// candidate count is clamped.
    pub fn batch_top_k_similar_to(
        &self,
        query: VertexId,
        candidates: &[VertexId],
        k: usize,
    ) -> Result<Vec<ScoredVertex>, QueryError> {
        self.validate_vertices(std::iter::once(query).chain(candidates.iter().copied()))?;
        rank_candidates(query, candidates, k, |pairs| self.batch_similarities(pairs))
    }
}

/// Folds one sample pair's walks into a [`usim_obs::WalkTally`]: walk and
/// step counts per backend, deaths, meetings, and patched- vs base-row
/// attribution of every sampled transition (the overlay serves the same
/// patched rows to both backends, so one [`OverlayView`] answers for both).
/// Runs only when metering is on; reads the positions buffers the samplers
/// already wrote.
fn tally_pair_walks(
    tally: &mut usim_obs::WalkTally,
    walk_u: &[VertexId],
    walk_v: &[VertexId],
    view: &OverlayView<'_>,
    sampler: SamplerKind,
) {
    tally.walks += 2;
    for walk in [walk_u, walk_v] {
        // A transition was sampled at every position before the first DEAD
        // slot (the dying transition included); a full-horizon walk sampled
        // one per non-final position.
        let first_dead = walk.iter().position(|&p| p == DEAD);
        let steps = first_dead.unwrap_or(walk.len() - 1) as u64;
        match sampler {
            SamplerKind::Legacy => tally.steps_legacy += steps,
            SamplerKind::Alias => tally.steps_alias += steps,
        }
        if first_dead.is_some() {
            tally.deaths += 1;
        }
        for &position in &walk[..steps as usize] {
            if view.is_patched(position) {
                tally.rows_patched += 1;
            } else {
                tally.rows_base += 1;
            }
        }
    }
    for (&a, &b) in walk_u.iter().zip(walk_v.iter()).skip(1) {
        if a != DEAD && a == b {
            tally.meetings += 1;
        }
    }
}

/// Accumulates the per-step meetings of one walk pair into `meeting`
/// (step 0 is handled by the caller; a dead slot never meets).
#[inline]
fn count_meetings(meeting: &mut [f64], walk_u: &[VertexId], walk_v: &[VertexId]) {
    for (k, slot) in meeting.iter_mut().enumerate().skip(1) {
        let a = walk_u[k];
        if a != DEAD && a == walk_v[k] {
            *slot += 1.0;
        }
    }
}

/// Splits `pairs` into the distinct pairs (first-occurrence order) and a
/// per-input slot map into that distinct list, so callers compute each
/// distinct pair once and scatter the results back to input order.
pub(crate) fn dedup_pairs(
    pairs: &[(VertexId, VertexId)],
) -> (Vec<(VertexId, VertexId)>, Vec<usize>) {
    let mut first_index = std::collections::HashMap::with_capacity(pairs.len());
    let mut distinct: Vec<(VertexId, VertexId)> = Vec::with_capacity(pairs.len());
    let slots: Vec<usize> = pairs
        .iter()
        .map(|&pair| {
            *first_index.entry(pair).or_insert_with(|| {
                distinct.push(pair);
                distinct.len() - 1
            })
        })
        .collect();
    (distinct, slots)
}

/// The ranking half of [`QueryEngine::batch_top_k`], parameterised over the
/// score provider so the caching layer ranks through the exact same
/// dedup / tie-break / truncation logic (callers validate ids first).
pub(crate) fn rank_pairs(
    pairs: &[(VertexId, VertexId)],
    k: usize,
    score_of: impl FnOnce(&[(VertexId, VertexId)]) -> Result<Vec<f64>, QueryError>,
) -> Result<Vec<ScoredPair>, QueryError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut unique: Vec<(VertexId, VertexId)> = pairs
        .iter()
        .filter(|(a, b)| a != b)
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    unique.sort_unstable();
    unique.dedup();
    let scores = score_of(&unique)?;
    let mut scored: Vec<ScoredPair> = unique
        .into_iter()
        .zip(scores)
        .map(|(pair, score)| ScoredPair { pair, score })
        .collect();
    crate::top_k::sort_descending_by_score(
        &mut scored,
        |s| s.score,
        |s| (s.pair.0 as u64) << 32 | s.pair.1 as u64,
    );
    scored.truncate(k);
    Ok(scored)
}

/// The ranking half of [`QueryEngine::batch_top_k_similar_to`] (see
/// [`rank_pairs`]).
pub(crate) fn rank_candidates(
    query: VertexId,
    candidates: &[VertexId],
    k: usize,
    score_of: impl FnOnce(&[(VertexId, VertexId)]) -> Result<Vec<f64>, QueryError>,
) -> Result<Vec<ScoredVertex>, QueryError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut unique: Vec<VertexId> = candidates.iter().copied().filter(|&v| v != query).collect();
    unique.sort_unstable();
    unique.dedup();
    let pairs: Vec<(VertexId, VertexId)> = unique.iter().map(|&v| (query, v)).collect();
    let scores = score_of(&pairs)?;
    let mut scored: Vec<ScoredVertex> = unique
        .into_iter()
        .zip(scores)
        .map(|(vertex, score)| ScoredVertex { vertex, score })
        .collect();
    crate::top_k::sort_descending_by_score(&mut scored, |s| s.score, |s| s.vertex as u64);
    scored.truncate(k);
    Ok(scored)
}

impl SimRankEstimator for QueryEngine {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        QueryEngine::similarity(self, u, v)
    }

    fn name(&self) -> &'static str {
        "QueryEngine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEstimator;
    use rayon::ThreadPoolBuilder;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    fn all_ordered_pairs(n: u32) -> Vec<(VertexId, VertexId)> {
        (0..n).flat_map(|u| (0..n).map(move |v| (u, v))).collect()
    }

    #[test]
    fn batch_equals_sequential_bit_for_bit() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(300).with_seed(7));
        let pairs = all_ordered_pairs(5);
        let batch = engine.batch_similarities(&pairs).unwrap();
        let sequential: Vec<f64> = pairs
            .iter()
            .map(|&(u, v)| engine.similarity(u, v))
            .collect();
        assert_eq!(batch, sequential);
        let profiles = engine.batch_profile(&pairs).unwrap();
        for (profile, &(u, v)) in profiles.iter().zip(&pairs) {
            assert_eq!(profile, &engine.profile(u, v));
        }
    }

    #[test]
    fn traced_queries_are_bit_identical_to_untraced_on_both_samplers() {
        let g = fig1_graph();
        for sampler in [SamplerKind::Legacy, SamplerKind::Alias] {
            let config = SimRankConfig::default()
                .with_samples(300)
                .with_seed(7)
                .with_sampler(sampler);
            let engine = QueryEngine::new(&g, config);
            let pairs = all_ordered_pairs(5);
            let traced = engine.batch_similarities_traced(&pairs).unwrap();
            let plain = engine.batch_similarities(&pairs).unwrap();
            for ((score, footprint), (&expected, &(u, v))) in
                traced.iter().zip(plain.iter().zip(&pairs))
            {
                assert_eq!(*score, expected, "({u},{v}) under {sampler:?}");
                // Both start vertices are always visited (step 0).
                assert!(footprint.may_contain(u) && footprint.may_contain(v));
            }
            let (profile, footprint) = engine.profile_traced(0, 1);
            assert_eq!(profile, engine.profile(0, 1));
            assert!(footprint.may_contain(0) && footprint.may_contain(1));
            assert!(!footprint.is_empty());
        }
    }

    #[test]
    fn batch_results_are_thread_count_invariant() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(200).with_seed(3));
        let pairs = all_ordered_pairs(5);
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let many = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let a = single.install(|| engine.batch_similarities(&pairs).unwrap());
        let b = many.install(|| engine.batch_similarities(&pairs).unwrap());
        assert_eq!(a, b, "pair-keyed RNG streams must make sharding invisible");
    }

    #[test]
    fn estimates_are_close_to_the_exact_baseline() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(4000).with_seed(17);
        let baseline = BaselineEstimator::new(&g, config);
        let engine = QueryEngine::new(&g, config);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (0, 3), (3, 4)] {
            let exact = baseline.try_similarity(u, v).unwrap();
            let estimate = engine.similarity(u, v);
            assert!(
                (exact - estimate).abs() < 0.03,
                "pair ({u},{v}): exact {exact}, engine {estimate}"
            );
        }
    }

    #[test]
    fn repeated_queries_and_duplicate_batch_entries_are_identical() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(100).with_seed(9));
        assert_eq!(engine.similarity(0, 1), engine.similarity(0, 1));
        let batch = engine
            .batch_similarities(&[(0, 1), (2, 3), (0, 1)])
            .unwrap();
        assert_eq!(batch[0], batch[2]);
    }

    #[test]
    fn duplicate_heavy_batches_dedupe_without_changing_output() {
        // Each distinct pair is sampled once and its result replicated; the
        // output must stay bit-identical to the sequential per-pair loop, in
        // input order, for scores and profiles alike.
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(120).with_seed(31));
        let batch: Vec<(VertexId, VertexId)> = vec![
            (0, 1),
            (1, 0),
            (0, 1),
            (2, 3),
            (0, 1),
            (2, 3),
            (3, 4),
            (0, 1),
        ];
        let scores = engine.batch_similarities(&batch).unwrap();
        let sequential: Vec<f64> = batch
            .iter()
            .map(|&(u, v)| engine.similarity(u, v))
            .collect();
        assert_eq!(scores, sequential);
        let profiles = engine.batch_profile(&batch).unwrap();
        for (profile, &(u, v)) in profiles.iter().zip(&batch) {
            assert_eq!(profile, &engine.profile(u, v));
        }
    }

    #[test]
    fn different_pairs_use_different_streams() {
        // (u, v) and (v, u) are distinct streams; both estimate the same
        // symmetric quantity but need not be bit-equal.
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(2000).with_seed(5));
        let ab = engine.similarity(0, 1);
        let ba = engine.similarity(1, 0);
        assert!((ab - ba).abs() < 0.05, "symmetric in expectation");
        assert_ne!(
            pair_seed(5, 0, 1),
            pair_seed(5, 1, 0),
            "pair seeds are order-sensitive"
        );
    }

    #[test]
    fn seed_changes_the_whole_batch() {
        let g = fig1_graph();
        let pairs = all_ordered_pairs(5);
        let a = QueryEngine::new(&g, SimRankConfig::default().with_samples(50).with_seed(1))
            .batch_similarities(&pairs)
            .unwrap();
        let b = QueryEngine::new(&g, SimRankConfig::default().with_samples(50).with_seed(2))
            .batch_similarities(&pairs)
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn top_k_pairs_dedupes_ranks_and_truncates() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(400).with_seed(11));
        let pairs = vec![(0u32, 1u32), (1, 0), (2, 3), (0, 2), (4, 4), (3, 2)];
        let top = engine.batch_top_k(&pairs, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        for scored in &top {
            assert!([(0, 1), (2, 3), (0, 2)].contains(&scored.pair));
        }
    }

    #[test]
    fn top_k_zero_is_empty_and_large_k_is_clamped() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(50).with_seed(2));
        let pairs = vec![(0u32, 1u32), (1, 0), (2, 3), (4, 4)];
        // k == 0: empty, nothing evaluated.
        assert!(engine.batch_top_k(&pairs, 0).unwrap().is_empty());
        // k beyond the distinct non-self pairs {(0,1), (2,3)}: clamped.
        let all = engine.batch_top_k(&pairs, 100).unwrap();
        assert_eq!(all.len(), 2);
        assert!(all[0].score >= all[1].score);
        // Same two semantics for the vertex-ranking variant.
        assert!(engine
            .batch_top_k_similar_to(0, &[1, 2, 0], 0)
            .unwrap()
            .is_empty());
        let ranked = engine.batch_top_k_similar_to(0, &[1, 2, 0, 1], 99).unwrap();
        assert_eq!(ranked.len(), 2, "query vertex and duplicates skipped");
    }

    #[test]
    fn top_k_similar_to_excludes_query_and_sorts() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(400).with_seed(13));
        let candidates: Vec<VertexId> = vec![0, 1, 2, 3, 4, 4, 1];
        let top = engine.batch_top_k_similar_to(1, &candidates, 3).unwrap();
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|s| s.vertex != 1));
        for window in top.windows(2) {
            assert!(window[0].score >= window[1].score);
        }
    }

    #[test]
    fn trait_impl_matches_inherent_method() {
        let g = fig1_graph();
        let mut engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(100));
        let via_inherent = QueryEngine::similarity(&engine, 2, 3);
        let via_trait = SimRankEstimator::similarity(&mut engine, 2, 3);
        assert_eq!(via_inherent, via_trait);
        assert_eq!(engine.name(), "QueryEngine");
        assert_eq!(engine.num_vertices(), 5);
        assert_eq!(engine.num_arcs(), 8);
        assert_eq!(engine.csr().num_arcs(), 8);
        assert_eq!(engine.config().num_samples, 100);
    }

    #[test]
    fn empty_batch_is_fine() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(10));
        assert!(engine.batch_similarities(&[]).unwrap().is_empty());
        assert!(engine.batch_profile(&[]).unwrap().is_empty());
        assert!(engine.batch_top_k(&[], 5).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pair_panics() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default());
        let _ = engine.similarity(0, 99);
    }

    #[test]
    fn out_of_range_batch_ids_are_typed_errors_not_panics() {
        let g = fig1_graph();
        let engine = QueryEngine::new(&g, SimRankConfig::default().with_samples(10));
        let expected = QueryError::VertexOutOfRange {
            vertex: 99,
            num_vertices: 5,
        };
        assert_eq!(
            engine.batch_similarities(&[(0, 1), (99, 2)]).unwrap_err(),
            expected
        );
        assert_eq!(engine.batch_profile(&[(99, 0)]).unwrap_err(), expected);
        assert_eq!(engine.batch_top_k(&[(0, 99)], 3).unwrap_err(), expected);
        assert_eq!(
            engine.batch_top_k_similar_to(99, &[0, 1], 2).unwrap_err(),
            expected
        );
        assert_eq!(
            engine.batch_top_k_similar_to(0, &[1, 99], 2).unwrap_err(),
            expected
        );
        assert_eq!(engine.try_similarity(0, 99).unwrap_err(), expected);
        assert!(engine.try_similarity(0, 1).is_ok());
        let message = expected.to_string();
        assert!(message.contains("99") && message.contains('5'), "{message}");
    }

    #[test]
    fn apply_updates_changes_scores_and_matches_a_fresh_engine() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(400).with_seed(19);
        let mut engine = QueryEngine::new(&g, config);
        let pairs = all_ordered_pairs(5);
        let before = engine.batch_similarities(&pairs).unwrap();

        let updates = [
            GraphUpdate::DeleteArc {
                source: 1,
                target: 2,
            },
            GraphUpdate::InsertArc {
                source: 4,
                target: 2,
                probability: 0.9,
            },
            GraphUpdate::SetProbability {
                source: 0,
                target: 2,
                probability: 0.05,
            },
        ];
        let summary = engine.apply_updates(&updates).unwrap();
        assert_eq!(summary.inserted, 1);
        assert_eq!(summary.deleted, 1);
        assert_eq!(summary.reweighted, 1);
        assert_eq!(engine.num_arcs(), 8);
        assert_eq!(engine.update_epoch(), 1);

        let after = engine.batch_similarities(&pairs).unwrap();
        assert_ne!(before, after, "updates must be visible to queries");

        // The dynamic engine must be bit-identical to a fresh engine built
        // on the mutated graph — with and without compaction.
        let fresh = QueryEngine::new(&engine.snapshot(), config);
        assert_eq!(after, fresh.batch_similarities(&pairs).unwrap());
        engine.set_compaction_policy(CompactionPolicy::eager());
        engine.apply_updates(&[]).unwrap();
        assert_eq!(engine.graph().patched_vertices(), 0, "compacted");
        assert_eq!(after, engine.batch_similarities(&pairs).unwrap());
    }

    #[test]
    fn rejected_updates_leave_the_engine_untouched() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(100).with_seed(23);
        let mut engine = QueryEngine::new(&g, config);
        let pairs = all_ordered_pairs(5);
        let before = engine.batch_similarities(&pairs).unwrap();
        let err = engine
            .apply_updates(&[
                GraphUpdate::InsertArc {
                    source: 4,
                    target: 0,
                    probability: 0.5,
                },
                GraphUpdate::DeleteArc {
                    source: 0,
                    target: 4,
                },
            ])
            .unwrap_err();
        assert_eq!(
            err,
            UpdateError::ArcNotFound {
                source: 0,
                target: 4
            }
        );
        assert_eq!(engine.update_epoch(), 0);
        assert_eq!(engine.batch_similarities(&pairs).unwrap(), before);
    }

    #[test]
    fn alias_batch_equals_sequential_bit_for_bit() {
        let g = fig1_graph();
        let engine = QueryEngine::new(
            &g,
            SimRankConfig::default()
                .with_samples(300)
                .with_seed(7)
                .with_sampler(SamplerKind::Alias),
        );
        assert!(engine.csr().has_alias_tables());
        let pairs = all_ordered_pairs(5);
        let batch = engine.batch_similarities(&pairs).unwrap();
        let sequential: Vec<f64> = pairs
            .iter()
            .map(|&(u, v)| engine.similarity(u, v))
            .collect();
        assert_eq!(batch, sequential);
    }

    #[test]
    fn alias_batch_results_are_thread_count_invariant() {
        let g = fig1_graph();
        let engine = QueryEngine::new(
            &g,
            SimRankConfig::default()
                .with_samples(200)
                .with_seed(3)
                .with_sampler(SamplerKind::Alias),
        );
        let pairs = all_ordered_pairs(5);
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let many = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let a = single.install(|| engine.batch_similarities(&pairs).unwrap());
        let b = many.install(|| engine.batch_similarities(&pairs).unwrap());
        assert_eq!(a, b, "alias mode is pair-keyed too: sharding is invisible");
    }

    #[test]
    fn alias_estimates_match_the_exact_baseline_at_short_horizons() {
        // The alias backend draws every step from the exact expected
        // one-step marginal W(1); for horizons ≤ 2 walk probabilities factor
        // through W(1) and W(2) exactly, so its estimates converge to the
        // same limit as the exact baseline.
        let g = fig1_graph();
        let config = SimRankConfig::default()
            .with_horizon(2)
            .with_samples(4000)
            .with_seed(17)
            .with_sampler(SamplerKind::Alias);
        let baseline = BaselineEstimator::new(&g, config);
        let engine = QueryEngine::new(&g, config);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (0, 3), (3, 4)] {
            let exact = baseline.try_similarity(u, v).unwrap();
            let estimate = engine.similarity(u, v);
            assert!(
                (exact - estimate).abs() < 0.03,
                "pair ({u},{v}): exact {exact}, alias {estimate}"
            );
        }
    }

    #[test]
    fn alias_and_legacy_are_distinct_backends() {
        // Same seed, same graph: the two sampler kinds consume randomness
        // differently and are not expected to be bit-equal.
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(200).with_seed(7);
        let legacy = QueryEngine::new(&g, config);
        let alias = QueryEngine::new(&g, config.with_sampler(SamplerKind::Alias));
        let pairs = all_ordered_pairs(5);
        assert_ne!(
            legacy.batch_similarities(&pairs).unwrap(),
            alias.batch_similarities(&pairs).unwrap()
        );
    }

    #[test]
    fn alias_updates_match_a_fresh_engine_with_and_without_compaction() {
        // The overlay patches alias rows for update endpoints only; answers
        // must still be bit-identical to a fresh engine that rebuilt every
        // table from scratch — before and after compaction folds the patched
        // rows back into the base tables.
        let g = fig1_graph();
        let config = SimRankConfig::default()
            .with_samples(400)
            .with_seed(19)
            .with_sampler(SamplerKind::Alias);
        let mut engine = QueryEngine::new(&g, config);
        let pairs = all_ordered_pairs(5);
        let before = engine.batch_similarities(&pairs).unwrap();

        let updates = [
            GraphUpdate::DeleteArc {
                source: 1,
                target: 2,
            },
            GraphUpdate::InsertArc {
                source: 4,
                target: 2,
                probability: 0.9,
            },
            GraphUpdate::SetProbability {
                source: 0,
                target: 2,
                probability: 0.05,
            },
        ];
        engine.apply_updates(&updates).unwrap();
        let after = engine.batch_similarities(&pairs).unwrap();
        assert_ne!(before, after, "updates must be visible in alias mode");

        let fresh = QueryEngine::new(&engine.snapshot(), config);
        assert_eq!(after, fresh.batch_similarities(&pairs).unwrap());
        engine.set_compaction_policy(CompactionPolicy::eager());
        engine.apply_updates(&[]).unwrap();
        assert_eq!(engine.graph().patched_vertices(), 0, "compacted");
        assert!(engine.csr().has_alias_tables(), "tables survive compaction");
        assert_eq!(after, engine.batch_similarities(&pairs).unwrap());
    }

    #[test]
    fn certain_update_degenerates_to_the_exact_baseline() {
        // Re-weight every arc to probability 1 via updates; the engine must
        // then agree with the exact baseline on the *certain* graph.
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(4000).with_seed(29);
        let mut engine = QueryEngine::new(&g, config);
        let updates: Vec<GraphUpdate> = g
            .arcs()
            .map(|a| GraphUpdate::SetProbability {
                source: a.source,
                target: a.target,
                probability: 1.0,
            })
            .collect();
        engine.apply_updates(&updates).unwrap();
        let baseline = BaselineEstimator::new(&g.certain(), config);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3)] {
            let exact = baseline.try_similarity(u, v).unwrap();
            let estimate = engine.similarity(u, v);
            assert!(
                (exact - estimate).abs() < 0.03,
                "pair ({u},{v}): exact {exact}, engine {estimate}"
            );
        }
    }
}
