//! Error bounds of the paper (Theorems 2 and 4, Corollary 1, Lemma 4) and
//! the sample-size calculator they imply.

/// Theorem 2: the truncation error of the `n`-th SimRank,
/// `|s⁽ⁿ⁾(u, v) − s(u, v)| ≤ c^{n+1}`.
pub fn theorem2_error_bound(decay: f64, horizon: usize) -> f64 {
    assert!(
        decay > 0.0 && decay < 1.0,
        "the decay factor must lie in (0, 1)"
    );
    decay.powi(horizon as i32 + 1)
}

/// Lemma 4: the number of sampled walk pairs needed so that each meeting
/// probability is within `epsilon` of its expectation with probability at
/// least `1 − delta`: `N ≥ (3/ε²)·ln(2/δ)`.
pub fn required_samples(epsilon: f64, delta: f64) -> usize {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    ((3.0 / (epsilon * epsilon)) * (2.0 / delta).ln()).ceil() as usize
}

/// Theorem 4: with `N ≥ (3/ε²)·ln(2/δ)` samples, the Sampling algorithm's
/// error satisfies `|s⁽ⁿ⁾ − ŝ⁽ⁿ⁾| ≤ ε(c − cⁿ)` with probability `≥ 1 − δ`.
pub fn theorem4_error_bound(epsilon: f64, decay: f64, horizon: usize) -> f64 {
    assert!(
        decay > 0.0 && decay < 1.0,
        "the decay factor must lie in (0, 1)"
    );
    epsilon * (decay - decay.powi(horizon as i32))
}

/// Corollary 1: the two-phase algorithm with phase switch `l` satisfies
/// `|s⁽ⁿ⁾ − ŝ⁽ⁿ⁾| ≤ ε(c^{l+1} − cⁿ)` with probability `≥ 1 − δ`.
pub fn corollary1_error_bound(
    epsilon: f64,
    decay: f64,
    phase_switch: usize,
    horizon: usize,
) -> f64 {
    assert!(
        decay > 0.0 && decay < 1.0,
        "the decay factor must lie in (0, 1)"
    );
    assert!(
        phase_switch < horizon,
        "the phase switch must be below the horizon for the bound to be meaningful"
    );
    epsilon * (decay.powi(phase_switch as i32 + 1) - decay.powi(horizon as i32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem2_bound_decays_geometrically() {
        let b5 = theorem2_error_bound(0.6, 5);
        let b6 = theorem2_error_bound(0.6, 6);
        assert!((b5 - 0.6f64.powi(6)).abs() < 1e-15);
        assert!((b6 / b5 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn required_samples_matches_formula() {
        // epsilon = 0.1, delta = 0.05: 3/0.01 * ln(40) = 300 * 3.688... = 1107.
        let n = required_samples(0.1, 0.05);
        assert_eq!(n, ((3.0 / 0.01) * (2.0f64 / 0.05).ln()).ceil() as usize);
        assert!((1100..=1110).contains(&n));
        // Halving epsilon quadruples the requirement.
        let n2 = required_samples(0.05, 0.05);
        assert!((n2 as f64 / n as f64 - 4.0).abs() < 0.01);
    }

    #[test]
    fn two_phase_bound_improves_on_sampling_bound() {
        let epsilon = 0.1;
        let c = 0.6;
        let n = 5;
        let sampling = theorem4_error_bound(epsilon, c, n);
        for l in 1..n {
            let two_phase = corollary1_error_bound(epsilon, c, l, n);
            assert!(two_phase < sampling, "l = {l}");
        }
        // l = 1 gives a factor-of-c improvement:
        let ratio = corollary1_error_bound(epsilon, c, 1, n) / sampling;
        assert!(ratio < c + 0.05);
    }

    #[test]
    fn bounds_are_nonnegative() {
        assert!(theorem4_error_bound(0.2, 0.6, 5) >= 0.0);
        assert!(corollary1_error_bound(0.2, 0.6, 2, 5) >= 0.0);
        assert!(theorem2_error_bound(0.9, 1) > 0.0);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn rejects_bad_decay() {
        let _ = theorem2_error_bound(1.0, 5);
    }

    #[test]
    #[should_panic(expected = "phase switch")]
    fn rejects_phase_switch_at_horizon() {
        let _ = corollary1_error_bound(0.1, 0.6, 5, 5);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        let _ = required_samples(0.1, 1.5);
    }
}
