//! The caching layer over [`SharedQueryEngine`]: epoch-validated,
//! bit-identical result reuse for serving workloads.
//!
//! [`CachedQueryEngine`] pairs a shared engine with an optional
//! [`usim_cache::ResultCache`] keyed on `(query kind, ordered vertex pair,
//! config fingerprint)` and tagged with the update epoch each answer was
//! computed under.  The contract is the project's signature invariant,
//! extended to the cache:
//!
//! > **Cached answers are bit-identical to uncached ones**, at any worker
//! > count, before and after arbitrary update rounds.
//!
//! Three properties make that easy to guarantee:
//!
//! * every pair's answer is a pure function of `(graph state, config)` —
//!   the engine's RNG streams are keyed on `(seed, u, v)`, never on call
//!   order — so replaying a stored answer *is* recomputing it;
//! * every lookup and every fill happen under **one read-lock
//!   acquisition**, so the epoch used to validate entries is exactly the
//!   epoch of the graph the misses are computed on — a concurrent
//!   [`CachedQueryEngine::apply_updates`] (write lock) can never interleave
//!   half-way through a batch;
//! * an update bumps the engine epoch, which logically invalidates every
//!   cache entry in O(1): entries from older epochs never hit (counted as
//!   `stale`), so no scan or flush runs inside the write lock.
//!
//! # Footprint-based survival
//!
//! The epoch bump alone would throw away every entry on every update round,
//! even rounds that cannot have changed the entry's answer.  Each cached
//! answer therefore carries the [`ugraph::VertexFootprint`] of its walks
//! (recorded by [`QueryEngine::batch_similarities_traced`] /
//! [`QueryEngine::profile_traced`] at zero RNG cost), and
//! [`CachedQueryEngine::apply_updates`] runs
//! [`usim_cache::ResultCache::revalidate`] inside the write lock: entries
//! whose footprint is disjoint from the round's touched-vertex set
//! ([`ugraph::footprint::touched_vertices`] — both endpoints of every
//! update) are **re-stamped** to the new epoch and keep hitting; the rest
//! go stale exactly as before.  Safety is one-sided: an answer depends only
//! on the adjacency rows of vertices its walks visited, the footprint is a
//! superset of those, and bloom false positives only kill entries — never
//! let one survive a round that touched it.
//!
//! With the cache disabled (capacity 0) the wrapper is a zero-cost
//! pass-through to the engine's own entry points — which already
//! deduplicate repeated pairs within one batch.

use crate::config::{SamplerKind, SimRankConfig, WalkDirection};
use crate::engine::{QueryEngine, QueryError};
use crate::meeting::MeetingProfile;
use crate::shared::SharedQueryEngine;
use crate::top_k::{ScoredPair, ScoredVertex};
use std::sync::Arc;
use ugraph::{GraphUpdate, UpdateError, UpdateSummary, VertexId};
use usim_cache::{CacheStats, ConfigFingerprint, PairKey, ResultCache};
use usim_obs::{time_stage, Stage, StageTrace};

/// The concrete cache type the engine integration uses: pair keys to
/// cached answers.
pub type QueryCache = ResultCache<PairKey, CachedAnswer>;

/// A memoised answer: the score of a pair or its full meeting profile
/// (distinguished by the key's [`usim_cache::QueryKind`], mirrored here so
/// a corrupted pairing degrades to a recompute, never a wrong answer).
#[derive(Debug, Clone)]
pub enum CachedAnswer {
    /// A single SimRank score.
    Score(f64),
    /// A per-step meeting-probability profile.
    Profile(MeetingProfile),
}

/// Fingerprints a [`SimRankConfig`] for cache keys: every field that can
/// change an answer (decay, horizon, samples, phase switch, seed,
/// direction, sampler backend) contributes its bit pattern.
///
/// The config is *destructured* rather than read field-by-field, so adding
/// a field to [`SimRankConfig`] without deciding how it feeds the
/// fingerprint is a compile error, not a silent cache-collision bug.
pub fn config_fingerprint(config: &SimRankConfig) -> ConfigFingerprint {
    let SimRankConfig {
        decay,
        horizon,
        num_samples,
        phase_switch,
        seed,
        direction,
        sampler,
    } = *config;
    ConfigFingerprint::from_words(&[
        decay.to_bits(),
        horizon as u64,
        num_samples as u64,
        phase_switch as u64,
        seed,
        match direction {
            WalkDirection::InNeighbors => 0,
            WalkDirection::OutNeighbors => 1,
        },
        match sampler {
            SamplerKind::Legacy => 0,
            SamplerKind::Alias => 1,
        },
    ])
}

/// A [`SharedQueryEngine`] with an optional epoch-validated result cache in
/// front of it.  Every query method returns `(epoch, answer)` captured
/// under one read-lock acquisition, which is what the wire protocol stamps
/// on responses.
///
/// # Example
///
/// ```
/// use ugraph::{GraphUpdate, UncertainGraphBuilder};
/// use usim_core::{CachedQueryEngine, SharedQueryEngine, SimRankConfig};
///
/// let g = UncertainGraphBuilder::new(3)
///     .arc(2, 0, 0.9)
///     .arc(2, 1, 0.8)
///     .build()
///     .unwrap();
/// let config = SimRankConfig::default().with_samples(100);
/// let cached = CachedQueryEngine::new(SharedQueryEngine::new(&g, config), 1024);
/// let uncached = CachedQueryEngine::new(SharedQueryEngine::new(&g, config), 0);
///
/// // First ask fills the cache, second is served from it — bit-identical
/// // to the cache-free engine either way.
/// let (_, a) = cached.similarity(0, 1).unwrap();
/// let (_, b) = cached.similarity(0, 1).unwrap();
/// let (_, c) = uncached.similarity(0, 1).unwrap();
/// assert_eq!(a, b);
/// assert_eq!(a, c);
/// assert_eq!(cached.cache_stats().unwrap().hits, 1);
///
/// // Updates bump the epoch: every cached entry is logically gone.
/// cached
///     .apply_updates(&[GraphUpdate::SetProbability { source: 2, target: 0, probability: 0.1 }])
///     .unwrap();
/// let (epoch, after) = cached.similarity(0, 1).unwrap();
/// assert_eq!(epoch, 1);
/// assert_ne!(a, after);
/// ```
#[derive(Debug)]
pub struct CachedQueryEngine {
    engine: SharedQueryEngine,
    cache: Option<Arc<QueryCache>>,
    fingerprint: ConfigFingerprint,
}

impl CachedQueryEngine {
    /// Wraps `engine` with a result cache bounded to `capacity` entries;
    /// `capacity == 0` disables caching entirely (the wrapper becomes a
    /// pass-through, no map is allocated).
    pub fn new(engine: SharedQueryEngine, capacity: usize) -> Self {
        let fingerprint = config_fingerprint(&engine.config());
        CachedQueryEngine {
            engine,
            cache: (capacity > 0).then(|| Arc::new(QueryCache::new(capacity))),
            fingerprint,
        }
    }

    /// The shared engine behind the cache.
    pub fn shared(&self) -> &SharedQueryEngine {
        &self.engine
    }

    /// Whether a cache is attached.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The configured cache capacity (0 when disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.capacity())
    }

    /// Snapshot of the cache counters, or `None` when caching is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// `(epoch, score)` of one pair (see [`QueryEngine::try_similarity`]).
    pub fn similarity(&self, u: VertexId, v: VertexId) -> Result<(u64, f64), QueryError> {
        self.similarity_with_trace(u, v, None)
    }

    /// [`CachedQueryEngine::similarity`] with stage tracing: cache probes
    /// count toward `cache_lookup`, miss computation toward `walk_sample`.
    /// The answer is bit-identical with or without a trace attached.
    pub fn similarity_with_trace(
        &self,
        u: VertexId,
        v: VertexId,
        trace: Option<&StageTrace>,
    ) -> Result<(u64, f64), QueryError> {
        self.engine.with_read(|e| {
            e.validate_vertices([u, v])?;
            let epoch = e.update_epoch();
            let scores = self.scores_for(e, epoch, &[(u, v)], trace)?;
            Ok((epoch, scores[0]))
        })
    }

    /// `(epoch, profile)` of one pair (see [`QueryEngine::try_profile`]).
    pub fn profile(&self, u: VertexId, v: VertexId) -> Result<(u64, MeetingProfile), QueryError> {
        self.profile_with_trace(u, v, None)
    }

    /// [`CachedQueryEngine::profile`] with stage tracing (see
    /// [`CachedQueryEngine::similarity_with_trace`]).
    pub fn profile_with_trace(
        &self,
        u: VertexId,
        v: VertexId,
        trace: Option<&StageTrace>,
    ) -> Result<(u64, MeetingProfile), QueryError> {
        self.engine.with_read(|e| {
            e.validate_vertices([u, v])?;
            let epoch = e.update_epoch();
            let Some(cache) = &self.cache else {
                let profile = time_stage(trace, Stage::WalkSample, || e.profile(u, v));
                return Ok((epoch, profile));
            };
            let key = PairKey::profile(u, v, self.fingerprint);
            let hit = time_stage(trace, Stage::CacheLookup, || cache.get(&key, epoch));
            if let Some(CachedAnswer::Profile(profile)) = hit {
                return Ok((epoch, profile));
            }
            let (profile, footprint) =
                time_stage(trace, Stage::WalkSample, || e.profile_traced(u, v));
            cache.insert_with_footprint(
                key,
                CachedAnswer::Profile(profile.clone()),
                epoch,
                footprint,
            );
            Ok((epoch, profile))
        })
    }

    /// `(epoch, scores)` of a batch in input order (see
    /// [`QueryEngine::batch_similarities`]).  Cached pairs are served from
    /// the cache, the misses are computed as one engine batch (each
    /// distinct pair sampled once) and inserted for the next ask.
    pub fn batch_similarities(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<(u64, Vec<f64>), QueryError> {
        self.batch_similarities_with_trace(pairs, None)
    }

    /// [`CachedQueryEngine::batch_similarities`] with stage tracing (see
    /// [`CachedQueryEngine::similarity_with_trace`]).
    pub fn batch_similarities_with_trace(
        &self,
        pairs: &[(VertexId, VertexId)],
        trace: Option<&StageTrace>,
    ) -> Result<(u64, Vec<f64>), QueryError> {
        self.engine.with_read(|e| {
            e.validate_vertices(pairs.iter().flat_map(|&(u, v)| [u, v]))?;
            let epoch = e.update_epoch();
            Ok((epoch, self.scores_for(e, epoch, pairs, trace)?))
        })
    }

    /// `(epoch, ranked pairs)` (see [`QueryEngine::batch_top_k`]); the
    /// per-pair scores behind the ranking go through the cache.
    pub fn batch_top_k(
        &self,
        pairs: &[(VertexId, VertexId)],
        k: usize,
    ) -> Result<(u64, Vec<ScoredPair>), QueryError> {
        self.engine.with_read(|e| {
            e.validate_vertices(pairs.iter().flat_map(|&(u, v)| [u, v]))?;
            let epoch = e.update_epoch();
            let ranked = crate::engine::rank_pairs(pairs, k, |unique| {
                self.scores_for(e, epoch, unique, None)
            })?;
            Ok((epoch, ranked))
        })
    }

    /// `(epoch, ranked candidates)` (see
    /// [`QueryEngine::batch_top_k_similar_to`]); the per-pair scores behind
    /// the ranking go through the cache.
    pub fn batch_top_k_similar_to(
        &self,
        query: VertexId,
        candidates: &[VertexId],
        k: usize,
    ) -> Result<(u64, Vec<ScoredVertex>), QueryError> {
        self.engine.with_read(|e| {
            e.validate_vertices(std::iter::once(query).chain(candidates.iter().copied()))?;
            let epoch = e.update_epoch();
            let ranked = crate::engine::rank_candidates(query, candidates, k, |pairs| {
                self.scores_for(e, epoch, pairs, None)
            })?;
            Ok((epoch, ranked))
        })
    }

    /// Applies an update batch and returns `(summary, new epoch)` captured
    /// under one write-lock acquisition.  The epoch bump invalidates every
    /// cached entry by default; immediately after it (still inside the
    /// write lock, so no reader can race the sweep) the cache is
    /// revalidated against the round's touched-vertex set — entries whose
    /// walk footprint is disjoint from every updated endpoint are
    /// re-stamped to the new epoch and keep serving hits.
    pub fn apply_updates(
        &self,
        updates: &[GraphUpdate],
    ) -> Result<(UpdateSummary, u64), UpdateError> {
        self.engine.with_write(|e| {
            let from_epoch = e.update_epoch();
            let summary = e.apply_updates(updates)?;
            let to_epoch = e.update_epoch();
            if let Some(cache) = &self.cache {
                let touched = ugraph::footprint::touched_vertices(updates);
                cache.revalidate(&touched, from_epoch, to_epoch);
            }
            Ok((summary, to_epoch))
        })
    }

    /// How many update batches the engine has applied.
    pub fn update_epoch(&self) -> u64 {
        self.engine.update_epoch()
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.engine.num_vertices()
    }

    /// Number of live arcs.
    pub fn num_arcs(&self) -> usize {
        self.engine.num_arcs()
    }

    /// The configuration in use.
    pub fn config(&self) -> SimRankConfig {
        self.engine.config()
    }

    /// Scores for `pairs` in input order at `epoch`, serving hits from the
    /// cache and computing the misses as one engine batch under the read
    /// lock already held by the caller (so `epoch` cannot move while the
    /// misses are computed or inserted).  Ids must already be validated:
    /// cached entries were validated when first computed, and vertex count
    /// never changes, so partial cache service cannot mask a bad id.
    fn scores_for(
        &self,
        e: &QueryEngine,
        epoch: u64,
        pairs: &[(VertexId, VertexId)],
        trace: Option<&StageTrace>,
    ) -> Result<Vec<f64>, QueryError> {
        let Some(cache) = &self.cache else {
            return time_stage(trace, Stage::WalkSample, || e.batch_similarities(pairs));
        };
        let mut scores = vec![0.0f64; pairs.len()];
        let mut miss_slots: Vec<usize> = Vec::new();
        let mut misses: Vec<(VertexId, VertexId)> = Vec::new();
        time_stage(trace, Stage::CacheLookup, || {
            for (slot, &(u, v)) in pairs.iter().enumerate() {
                match cache.get(&PairKey::score(u, v, self.fingerprint), epoch) {
                    Some(CachedAnswer::Score(score)) => scores[slot] = score,
                    // A profile under a score key cannot happen (the kind is
                    // in the key); recompute rather than trust a corrupt
                    // pairing.
                    Some(CachedAnswer::Profile(_)) | None => {
                        miss_slots.push(slot);
                        misses.push((u, v));
                    }
                }
            }
        });
        if !misses.is_empty() {
            // Deduplicate the misses so each distinct pair is computed and
            // inserted once; one engine batch covers them all, sharded
            // across workers.
            let (distinct, distinct_of) = crate::engine::dedup_pairs(&misses);
            let computed = time_stage(trace, Stage::WalkSample, || {
                e.batch_similarities_traced(&distinct)
            })?;
            for (&slot, &index) in miss_slots.iter().zip(distinct_of.iter()) {
                scores[slot] = computed[index].0;
            }
            for (&(u, v), &(score, footprint)) in distinct.iter().zip(computed.iter()) {
                cache.insert_with_footprint(
                    PairKey::score(u, v, self.fingerprint),
                    CachedAnswer::Score(score),
                    epoch,
                    footprint,
                );
            }
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> ugraph::UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    fn engines(capacity: usize) -> (CachedQueryEngine, QueryEngine) {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        (
            CachedQueryEngine::new(SharedQueryEngine::new(&g, config), capacity),
            QueryEngine::new(&g, config),
        )
    }

    fn all_pairs() -> Vec<(VertexId, VertexId)> {
        (0..5).flat_map(|u| (0..5).map(move |v| (u, v))).collect()
    }

    #[test]
    fn cached_answers_are_bit_identical_to_the_engine() {
        let (cached, reference) = engines(256);
        let pairs = all_pairs();
        // Twice: the second run is served from the cache.
        for _ in 0..2 {
            let (epoch, scores) = cached.batch_similarities(&pairs).unwrap();
            assert_eq!(epoch, 0);
            assert_eq!(scores, reference.batch_similarities(&pairs).unwrap());
            let (_, score) = cached.similarity(1, 2).unwrap();
            assert_eq!(score, reference.similarity(1, 2));
            let (_, profile) = cached.profile(2, 3).unwrap();
            assert_eq!(profile, reference.profile(2, 3));
            let (_, top) = cached.batch_top_k(&pairs, 3).unwrap();
            assert_eq!(top, reference.batch_top_k(&pairs, 3).unwrap());
            let (_, ranked) = cached.batch_top_k_similar_to(0, &[1, 2, 3, 4], 2).unwrap();
            assert_eq!(
                ranked,
                reference
                    .batch_top_k_similar_to(0, &[1, 2, 3, 4], 2)
                    .unwrap()
            );
        }
        let stats = cached.cache_stats().unwrap();
        assert!(stats.hits > 0, "second pass must hit: {stats:?}");
    }

    #[test]
    fn disabled_cache_is_a_pass_through() {
        let (cached, reference) = engines(0);
        assert!(!cached.cache_enabled());
        assert_eq!(cached.cache_capacity(), 0);
        assert!(cached.cache_stats().is_none());
        let (epoch, scores) = cached.batch_similarities(&all_pairs()).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(scores, reference.batch_similarities(&all_pairs()).unwrap());
    }

    #[test]
    fn updates_invalidate_by_epoch_and_answers_track_the_live_graph() {
        let (cached, mut reference) = engines(256);
        let pairs = all_pairs();
        let (_, before) = cached.batch_similarities(&pairs).unwrap();
        let updates = [GraphUpdate::SetProbability {
            source: 0,
            target: 2,
            probability: 0.05,
        }];
        let (summary, epoch) = cached.apply_updates(&updates).unwrap();
        assert_eq!((summary.reweighted, epoch), (1, 1));
        reference.apply_updates(&updates).unwrap();
        let (epoch, after) = cached.batch_similarities(&pairs).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(after, reference.batch_similarities(&pairs).unwrap());
        assert_ne!(before, after);
        let stats = cached.cache_stats().unwrap();
        assert!(
            stats.stale > 0,
            "old-epoch entries must read as stale: {stats:?}"
        );
        // Asking again at the new epoch hits.
        let hits_before = cached.cache_stats().unwrap().hits;
        cached.batch_similarities(&pairs).unwrap();
        assert!(cached.cache_stats().unwrap().hits > hits_before);
    }

    /// Two disconnected components: queries in one, updates in the other.
    /// Walks can never cross, so footprints and touched sets are disjoint.
    fn two_component_graph() -> ugraph::UncertainGraph {
        UncertainGraphBuilder::new(6)
            // Component A: vertices 0..3.
            .arc(2, 0, 0.9)
            .arc(2, 1, 0.8)
            .arc(1, 0, 0.7)
            // Component B: vertices 3..6.
            .arc(5, 3, 0.9)
            .arc(5, 4, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn entries_survive_updates_disjoint_from_their_footprint() {
        let g = two_component_graph();
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        let cached = CachedQueryEngine::new(SharedQueryEngine::new(&g, config), 256);
        let pairs: Vec<(VertexId, VertexId)> = vec![(0, 1), (0, 2), (1, 2)];
        let (_, before) = cached.batch_similarities(&pairs).unwrap();

        // The round only touches component B: every component-A entry's
        // footprint is disjoint from {3, 5} and must survive.
        let updates = [GraphUpdate::SetProbability {
            source: 5,
            target: 3,
            probability: 0.2,
        }];
        let (_, epoch) = cached.apply_updates(&updates).unwrap();
        assert_eq!(epoch, 1);
        let stats = cached.cache_stats().unwrap();
        assert_eq!(
            (stats.survived, stats.killed),
            (pairs.len() as u64, 0),
            "disjoint round must re-stamp everything: {stats:?}"
        );

        // The repeat ask is served entirely from the cache…
        let misses_before = stats.misses;
        let (epoch, after) = cached.batch_similarities(&pairs).unwrap();
        assert_eq!(epoch, 1);
        let stats = cached.cache_stats().unwrap();
        assert_eq!(stats.misses, misses_before, "no recompute after survival");
        assert_eq!(after, before, "component A is untouched by the update");

        // …and the survivors are bit-identical to a fresh engine built on
        // the updated graph (the ground truth for "survival was sound").
        let mut reference = QueryEngine::new(&g, config);
        reference.apply_updates(&updates).unwrap();
        assert_eq!(after, reference.batch_similarities(&pairs).unwrap());
    }

    #[test]
    fn entries_touching_the_updated_region_still_die() {
        let g = two_component_graph();
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        let cached = CachedQueryEngine::new(SharedQueryEngine::new(&g, config), 256);
        cached.batch_similarities(&[(0, 1), (3, 4)]).unwrap();

        // Touches component A (vertex 0 is in (0, 1)'s footprint — both
        // walks start there or reach it); (3, 4) lives in B and survives.
        let updates = [GraphUpdate::SetProbability {
            source: 1,
            target: 0,
            probability: 0.2,
        }];
        cached.apply_updates(&updates).unwrap();
        let stats = cached.cache_stats().unwrap();
        assert_eq!(
            (stats.survived, stats.killed),
            (1, 1),
            "A-side entry dies, B-side survives: {stats:?}"
        );

        // The dead pair recomputes against the live graph.
        let mut reference = QueryEngine::new(&g, config);
        reference.apply_updates(&updates).unwrap();
        let (_, scores) = cached.batch_similarities(&[(0, 1), (3, 4)]).unwrap();
        assert_eq!(
            scores,
            reference.batch_similarities(&[(0, 1), (3, 4)]).unwrap()
        );
    }

    #[test]
    fn profile_entries_survive_disjoint_rounds_too() {
        let g = two_component_graph();
        let config = SimRankConfig::default().with_samples(150).with_seed(7);
        let cached = CachedQueryEngine::new(SharedQueryEngine::new(&g, config), 256);
        let (_, before) = cached.profile(0, 1).unwrap();
        cached
            .apply_updates(&[GraphUpdate::InsertArc {
                source: 4,
                target: 3,
                probability: 0.5,
            }])
            .unwrap();
        let stats = cached.cache_stats().unwrap();
        assert_eq!((stats.survived, stats.killed), (1, 0), "{stats:?}");
        let hits_before = stats.hits;
        let (epoch, after) = cached.profile(0, 1).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(after, before);
        assert_eq!(cached.cache_stats().unwrap().hits, hits_before + 1);
    }

    #[test]
    fn intra_batch_duplicates_hit_within_one_request() {
        let (cached, reference) = engines(64);
        let batch = [(0, 1), (2, 3), (0, 1), (0, 1), (2, 3)];
        let (_, scores) = cached.batch_similarities(&batch).unwrap();
        assert_eq!(scores, reference.batch_similarities(&batch).unwrap());
        assert_eq!(scores[0], scores[2]);
        // Only the two distinct pairs were ever inserted.
        assert_eq!(cached.cache_stats().unwrap().insertions, 2);
    }

    #[test]
    fn error_semantics_match_the_engine_even_on_cached_pairs() {
        let (cached, _) = engines(64);
        cached.similarity(0, 1).unwrap(); // (0, 1) is now cached
        let expected = QueryError::VertexOutOfRange {
            vertex: 99,
            num_vertices: 5,
        };
        // A batch containing a cached pair and a bad id still rejects the
        // whole batch up front, like the raw engine.
        assert_eq!(
            cached.batch_similarities(&[(0, 1), (99, 0)]).unwrap_err(),
            expected
        );
        assert_eq!(cached.similarity(0, 99).unwrap_err(), expected);
        assert_eq!(cached.profile(99, 0).unwrap_err(), expected);
        // Self-pair ids are validated before dedup drops them (k > 0 and
        // k == 0 alike), exactly like the engine.
        assert_eq!(cached.batch_top_k(&[(99, 99)], 5).unwrap_err(), expected);
        assert_eq!(cached.batch_top_k(&[(99, 99)], 0).unwrap_err(), expected);
        assert_eq!(
            cached.batch_top_k_similar_to(99, &[0], 2).unwrap_err(),
            expected
        );
    }

    #[test]
    fn fingerprint_separates_configs() {
        let base = SimRankConfig::default();
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base));
        for other in [
            base.with_decay(0.7),
            base.with_horizon(6),
            base.with_samples(999),
            base.with_phase_switch(2),
            base.with_seed(123),
            base.with_direction(WalkDirection::OutNeighbors),
            base.with_sampler(SamplerKind::Alias),
        ] {
            assert_ne!(
                config_fingerprint(&base),
                config_fingerprint(&other),
                "{other:?} must fingerprint differently"
            );
        }
    }

    #[test]
    fn every_config_field_feeds_the_fingerprint() {
        // Exhaustiveness guard: destructure the config with no `..` rest
        // pattern.  Adding a field to `SimRankConfig` breaks this test (and
        // `config_fingerprint` itself, which destructures the same way) at
        // compile time, forcing the author to decide how the new field
        // contributes to cache keys.
        let SimRankConfig {
            decay,
            horizon,
            num_samples,
            phase_switch,
            seed,
            direction,
            sampler,
        } = SimRankConfig::default();
        assert_eq!(decay, 0.6);
        assert_eq!(horizon, 5);
        assert_eq!(num_samples, 1000);
        assert_eq!(phase_switch, 1);
        assert_eq!(seed, 0x5eed_cafe);
        assert_eq!(direction, WalkDirection::InNeighbors);
        assert_eq!(sampler, SamplerKind::Legacy);
    }
}
