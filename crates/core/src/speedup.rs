//! The speed-up technique SR-SP (Section VI-D, Fig. 5 of the paper).
//!
//! Instead of extending `N` sampled walks one by one, SR-SP runs all `N`
//! sampling processes simultaneously:
//!
//! * every arc `e = (w, x)` gets an `N`-bit *filter vector* `F_e`; bit `i` is
//!   set when, in the `i`-th offline instantiation of the arcs leaving `w`,
//!   the sampling process chose to move along `e`;
//! * the *counting table* entry `M_w[k]` records in which of the `N` walks
//!   vertex `w` is the `k`-th vertex; the propagation step is
//!   `M_x[k+1] |= M_w[k] ∧ F_(w,x)`;
//! * the meeting probability is recovered by the masked popcount of Eq. (16):
//!   `m̂(k) = (1/N) Σ_{w ∈ U(k) ∩ V(k)} ‖M_w[k] ∧ M'_w[k]‖₁`.
//!
//! A subtlety the paper glosses over: if the filter vectors are built offline
//! *once and shared by both propagation passes*, the walk from `u` and the
//! walk from `v` with the same sample index share the instantiation (and even
//! the choice) at any vertex both of them visit, whereas the Sampling
//! algorithm instantiates per walk.  The marginal distribution of each walk
//! is unchanged, but the two walks of a sample are coupled, which biases the
//! meeting estimate relative to Eq. (12)'s product of marginals (drastically
//! so for self-pair queries).  This implementation therefore gives each
//! propagation side its own filter vectors by default — same asymptotic cost,
//! unbiased — and keeps the paper's shared construction behind
//! [`SpeedupEstimator::with_shared_filters`] for the ablation benchmark.

use crate::baseline::working_graph;
use crate::config::SimRankConfig;
use crate::meeting::MeetingProfile;
use crate::SimRankEstimator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rwalk::transpr::{transition_rows_from, TransPrOptions};
use std::collections::HashMap;
use ugraph::{UncertainGraph, VertexId};
use umatrix::BitVec;

/// Which filter-vector cache a propagation pass uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Source,
    Target,
}

/// The SR-SP estimator: the two-phase algorithm with the bit-vector sharing
/// technique for its sampling phase.
#[derive(Debug)]
pub struct SpeedupEstimator {
    graph: UncertainGraph,
    config: SimRankConfig,
    options: TransPrOptions,
    shared_filters: bool,
    /// Lazily built filter vectors, one `BitVec` per out-arc of each vertex,
    /// aligned with `graph.out_arcs(v)`.
    filters: HashMap<VertexId, Vec<BitVec>>,
    /// Separate cache for the target-side propagation when `shared_filters`
    /// is disabled.
    filters_target: HashMap<VertexId, Vec<BitVec>>,
}

impl SpeedupEstimator {
    /// Creates an SR-SP estimator for `graph` under `config`.
    pub fn new(graph: &UncertainGraph, config: SimRankConfig) -> Self {
        config.validate();
        SpeedupEstimator {
            graph: working_graph(graph, config.direction),
            config,
            options: TransPrOptions::default(),
            shared_filters: false,
            filters: HashMap::new(),
            filters_target: HashMap::new(),
        }
    }

    /// Overrides the `TransPr` options used by the exact phase.
    pub fn with_transpr_options(mut self, options: TransPrOptions) -> Self {
        self.options = options;
        self
    }

    /// Controls whether both propagation passes share the same offline filter
    /// vectors (the paper's construction) or each side builds its own.
    ///
    /// Sharing halves the filter memory and is what Fig. 5 of the paper
    /// describes, but it couples the two walks of each sample index — most
    /// visibly for self-pair queries, whose estimate degenerates to the walk
    /// survival probability — so the *independent* construction is the
    /// default here; the estimates then match the Sampling algorithm's
    /// distribution exactly.  The shared variant remains available for the
    /// ablation benchmark.
    pub fn with_shared_filters(mut self, shared: bool) -> Self {
        self.shared_filters = shared;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimRankConfig {
        &self.config
    }

    /// Number of vertices whose filter vectors have been materialised so far
    /// (across both caches); exposed for memory accounting in the benches.
    pub fn cached_filter_vertices(&self) -> usize {
        self.filters.len() + self.filters_target.len()
    }

    /// Clears the filter caches (e.g. between measurement repetitions).
    pub fn clear_filter_cache(&mut self) {
        self.filters.clear();
        self.filters_target.clear();
    }

    fn ensure_filters(&mut self, v: VertexId, side: Side) {
        let cache = match side {
            Side::Source => &mut self.filters,
            Side::Target => &mut self.filters_target,
        };
        if cache.contains_key(&v) {
            return;
        }
        // Each vertex's filter vectors are drawn from an RNG derived only from
        // (seed, vertex, side), so the offline construction is independent of
        // the order in which vertices are first visited: two estimators with
        // the same seed produce identical estimates regardless of the query
        // sequence that warmed their caches.
        let side_salt: u64 = match side {
            Side::Source => 0x5151_5151_5151_5151,
            Side::Target => 0xabab_abab_abab_abab,
        };
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(u64::from(v).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                ^ side_salt,
        );
        let (neighbors, probabilities) = self.graph.out_arcs(v);
        let n_samples = self.config.num_samples;
        let mut vectors = vec![BitVec::zeros(n_samples); neighbors.len()];
        let mut instantiated: Vec<usize> = Vec::with_capacity(neighbors.len());
        for i in 0..n_samples {
            instantiated.clear();
            for (idx, &p) in probabilities.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    instantiated.push(idx);
                }
            }
            if instantiated.is_empty() {
                continue;
            }
            let choice = instantiated[rng.gen_range(0..instantiated.len())];
            vectors[choice].set(i, true);
        }
        let cache = match side {
            Side::Source => &mut self.filters,
            Side::Target => &mut self.filters_target,
        };
        cache.insert(v, vectors);
    }

    fn filter_side(&self, side: Side) -> &HashMap<VertexId, Vec<BitVec>> {
        match side {
            Side::Source => &self.filters,
            Side::Target => {
                if self.shared_filters {
                    &self.filters
                } else {
                    &self.filters_target
                }
            }
        }
    }

    /// Runs the shared BFS-style propagation of Fig. 5 from `start` and
    /// returns the counting tables level by level: `levels[k]` maps each
    /// vertex `w` reachable in `k` steps to the bit vector `M_w[k]`.
    fn propagate(&mut self, start: VertexId, side: Side) -> Vec<HashMap<VertexId, BitVec>> {
        let n = self.config.horizon;
        let n_samples = self.config.num_samples;
        let effective_side = if self.shared_filters {
            Side::Source
        } else {
            side
        };
        let mut levels: Vec<HashMap<VertexId, BitVec>> = Vec::with_capacity(n + 1);
        let mut first = HashMap::new();
        first.insert(start, BitVec::ones(n_samples));
        levels.push(first);
        for k in 0..n {
            // Materialise the filters of every frontier vertex first so the
            // propagation loop below can borrow the cache immutably.
            let frontier: Vec<VertexId> = levels[k].keys().copied().collect();
            for &w in &frontier {
                self.ensure_filters(w, effective_side);
            }
            let mut next: HashMap<VertexId, BitVec> = HashMap::new();
            let cache = self.filter_side(effective_side);
            for (&w, bits) in &levels[k] {
                let neighbors = self.graph.out_neighbors(w);
                let vectors = cache.get(&w).expect("filters ensured above");
                for (idx, &x) in neighbors.iter().enumerate() {
                    let filter = &vectors[idx];
                    let entry = next.entry(x).or_insert_with(|| BitVec::zeros(n_samples));
                    entry.or_and_assign(bits, filter);
                }
            }
            next.retain(|_, bits| !bits.is_zero());
            levels.push(next);
        }
        levels
    }

    /// Meeting probabilities with the exact phase for `k ≤ l` and the
    /// bit-vector estimate of Eq. (16) for `l < k ≤ n`.
    pub fn profile(&mut self, u: VertexId, v: VertexId) -> MeetingProfile {
        let n = self.config.horizon;
        let l = self.config.effective_phase_switch();
        let n_samples = self.config.num_samples;
        let mut meeting = vec![0.0; n + 1];
        meeting[0] = if u == v { 1.0 } else { 0.0 };

        if l >= 1 {
            let rows_u = transition_rows_from(&self.graph, u, l, &self.options)
                .expect("TransPr walk budget exceeded in the exact phase; lower phase_switch");
            let rows_v = if u == v {
                rows_u.clone()
            } else {
                transition_rows_from(&self.graph, v, l, &self.options)
                    .expect("TransPr walk budget exceeded in the exact phase; lower phase_switch")
            };
            for k in 1..=l {
                meeting[k] = rows_u[k].dot(&rows_v[k]);
            }
        }

        if l < n {
            let levels_u = self.propagate(u, Side::Source);
            let levels_v = self.propagate(v, Side::Target);
            for (k, slot) in meeting.iter_mut().enumerate().take(n + 1).skip(l + 1) {
                let (small, large) = if levels_u[k].len() <= levels_v[k].len() {
                    (&levels_u[k], &levels_v[k])
                } else {
                    (&levels_v[k], &levels_u[k])
                };
                let mut matches = 0usize;
                for (w, bits) in small {
                    if let Some(other) = large.get(w) {
                        matches += bits.and_count(other);
                    }
                }
                *slot = matches as f64 / n_samples as f64;
            }
        }
        MeetingProfile::new(meeting, self.config.decay)
    }
}

impl SimRankEstimator for SpeedupEstimator {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.profile(u, v).score()
    }

    fn name(&self) -> &'static str {
        "SR-SP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEstimator;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn estimates_are_close_to_the_exact_baseline() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(4000).with_seed(31);
        let baseline = BaselineEstimator::new(&g, config);
        let mut speedup = SpeedupEstimator::new(&g, config);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (0, 3)] {
            let exact = baseline.try_similarity(u, v).unwrap();
            let estimate = speedup.similarity(u, v);
            assert!(
                (exact - estimate).abs() < 0.04,
                "pair ({u},{v}): exact {exact}, SR-SP {estimate}"
            );
        }
    }

    #[test]
    fn independent_filters_are_also_close_to_the_baseline() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(4000).with_seed(37);
        let baseline = BaselineEstimator::new(&g, config);
        let mut speedup = SpeedupEstimator::new(&g, config).with_shared_filters(false);
        for (u, v) in [(0u32, 1u32), (2, 3)] {
            let exact = baseline.try_similarity(u, v).unwrap();
            let estimate = speedup.similarity(u, v);
            assert!(
                (exact - estimate).abs() < 0.04,
                "pair ({u},{v}): exact {exact}, SR-SP(independent) {estimate}"
            );
        }
    }

    #[test]
    fn exact_phase_steps_match_the_baseline() {
        let g = fig1_graph();
        let config = SimRankConfig::default()
            .with_phase_switch(2)
            .with_samples(100)
            .with_seed(11);
        let baseline = BaselineEstimator::new(&g, config);
        let mut speedup = SpeedupEstimator::new(&g, config);
        let exact = baseline.profile(1, 2);
        let estimated = speedup.profile(1, 2);
        for k in 0..=2 {
            assert!(
                (exact.meeting[k] - estimated.meeting[k]).abs() < 1e-12,
                "step {k} should be exact"
            );
        }
    }

    #[test]
    fn propagation_reuses_cached_filters_across_queries() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(200).with_seed(3);
        let mut speedup = SpeedupEstimator::new(&g, config);
        assert_eq!(speedup.cached_filter_vertices(), 0);
        let first = speedup.similarity(0, 1);
        let cached_after_first = speedup.cached_filter_vertices();
        assert!(cached_after_first > 0);
        // A second query over the same region reuses the offline filters and
        // therefore returns exactly the same estimate.
        let second = speedup.similarity(0, 1);
        assert_eq!(first, second);
        assert_eq!(speedup.cached_filter_vertices(), cached_after_first);
        speedup.clear_filter_cache();
        assert_eq!(speedup.cached_filter_vertices(), 0);
    }

    #[test]
    fn estimates_are_independent_of_the_query_order() {
        // Filter vectors are derived from (seed, vertex, side) only, so the
        // answer for a pair does not depend on which queries warmed the cache
        // first — two fresh estimators agree exactly even when their query
        // sequences differ.
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(300).with_seed(41);
        let mut warm_path_a = SpeedupEstimator::new(&g, config);
        let mut warm_path_b = SpeedupEstimator::new(&g, config);
        let _ = warm_path_a.similarity(3, 4); // different warm-up queries
        let _ = warm_path_b.similarity(2, 2);
        assert_eq!(warm_path_a.similarity(0, 1), warm_path_b.similarity(0, 1));
    }

    #[test]
    fn filter_vectors_choose_at_most_one_arc_per_sample() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(64).with_seed(13);
        let mut speedup = SpeedupEstimator::new(&g, config);
        speedup.ensure_filters(0, Side::Source);
        let vectors = &speedup.filters[&0];
        assert_eq!(vectors.len(), g.transpose().out_degree(0));
        for i in 0..64 {
            let chosen: usize = vectors.iter().map(|f| usize::from(f.get(i))).sum();
            assert!(chosen <= 1, "sample {i} chose {chosen} arcs");
        }
    }

    #[test]
    fn estimates_stay_in_range() {
        let g = fig1_graph();
        let mut speedup =
            SpeedupEstimator::new(&g, SimRankConfig::default().with_samples(500).with_seed(5));
        for u in g.vertices() {
            for v in g.vertices() {
                let s = speedup.similarity(u, v);
                assert!((0.0..=1.0 + 1e-12).contains(&s), "s({u},{v}) = {s}");
            }
        }
    }

    #[test]
    fn name_is_reported() {
        let g = fig1_graph();
        let speedup = SpeedupEstimator::new(&g, SimRankConfig::default());
        assert_eq!(speedup.name(), "SR-SP");
    }
}
