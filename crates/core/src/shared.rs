//! A thread-safe handle over [`QueryEngine`] for long-lived services.
//!
//! [`QueryEngine`] itself is already `Send + Sync` for *queries* (every
//! batch entry point takes `&self` and shards across rayon workers), but
//! [`QueryEngine::apply_updates`] takes `&mut self`: the overlay patches
//! rows and the pooled arenas are invalidated, so updates must exclude
//! concurrent readers.  [`SharedQueryEngine`] packages that discipline as a
//! reader/writer lock so N serving threads can share one engine:
//!
//! * queries take the read lock — any number run concurrently, each drawing
//!   worker scratch from the engine's own pool;
//! * [`SharedQueryEngine::apply_updates`] takes the write lock — the update
//!   batch is applied atomically while no query is in flight, the update
//!   epoch is bumped, and every pooled arena is invalidated before readers
//!   resume.
//!
//! The epoch is how clients detect staleness: [`SharedQueryEngine::with_read`]
//! evaluates a closure under one read-lock acquisition, so a caller can
//! capture `(update_epoch, answer)` as one consistent pair — the epoch
//! recorded is exactly the epoch the answer was computed under.  The
//! `usim_server` wire protocol stamps every response this way.
//!
//! Determinism is unchanged: answers are bit-identical to calling the same
//! entry points on an exclusive [`QueryEngine`], at any reader count.

use crate::config::SimRankConfig;
use crate::engine::{QueryEngine, QueryError};
use crate::meeting::MeetingProfile;
use crate::top_k::{ScoredPair, ScoredVertex};
use parking_lot::RwLock;
use ugraph::{GraphUpdate, UncertainGraph, UpdateError, UpdateSummary, VertexId};

// The audit [`SharedQueryEngine`] relies on, checked at compile time: the
// engine (CSR base + delta overlay + the Mutex-protected scratch pool) must
// be shareable across serving threads.  If a future field introduces
// thread-unsafe interior mutability (`Cell`, `Rc`, raw pointers), this
// fails to compile instead of corrupting a live server.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>();
    assert_send_sync::<SharedQueryEngine>();
    assert_send_sync::<SimRankConfig>();
    assert_send_sync::<QueryError>();
};

/// A reader/writer-locked [`QueryEngine`] shared by many serving threads.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use ugraph::{GraphUpdate, UncertainGraphBuilder};
/// use usim_core::{SharedQueryEngine, SimRankConfig};
///
/// let g = UncertainGraphBuilder::new(3)
///     .arc(2, 0, 0.9)
///     .arc(2, 1, 0.8)
///     .build()
///     .unwrap();
/// let shared = Arc::new(SharedQueryEngine::new(
///     &g,
///     SimRankConfig::default().with_samples(100),
/// ));
///
/// // Readers run concurrently; each response pairs the answer with the
/// // epoch it was computed under.
/// let worker = {
///     let shared = Arc::clone(&shared);
///     std::thread::spawn(move || shared.with_read(|e| (e.update_epoch(), e.similarity(0, 1))))
/// };
/// let (epoch, score) = worker.join().unwrap();
/// assert_eq!(epoch, 0);
/// assert_eq!(score, shared.with_read(|e| e.similarity(0, 1)));
///
/// // A writer excludes readers for the duration of one atomic batch.
/// shared
///     .apply_updates(&[GraphUpdate::SetProbability { source: 2, target: 0, probability: 0.1 }])
///     .unwrap();
/// assert_eq!(shared.update_epoch(), 1);
/// ```
#[derive(Debug)]
pub struct SharedQueryEngine {
    inner: RwLock<QueryEngine>,
}

impl SharedQueryEngine {
    /// Builds a shared engine for `graph` under `config` (see
    /// [`QueryEngine::new`]).
    pub fn new(graph: &UncertainGraph, config: SimRankConfig) -> Self {
        SharedQueryEngine::from_engine(QueryEngine::new(graph, config))
    }

    /// Wraps an already-built engine.
    pub fn from_engine(engine: QueryEngine) -> Self {
        SharedQueryEngine {
            inner: RwLock::new(engine),
        }
    }

    /// Builds a shared engine directly on a compiled CSR graph (see
    /// [`QueryEngine::from_csr`] — the snapshot boot path).
    pub fn from_csr(csr: ugraph::CsrGraph, config: SimRankConfig) -> Self {
        SharedQueryEngine::from_engine(QueryEngine::from_csr(csr, config))
    }

    /// Unwraps the handle back into the exclusive engine.
    pub fn into_engine(self) -> QueryEngine {
        self.inner.into_inner()
    }

    /// Runs `f` under a single read-lock acquisition.
    ///
    /// Use this when a response must couple an answer with the epoch it was
    /// computed under: two separate calls could interleave with a writer,
    /// pairing a new epoch with an old answer (or vice versa).
    pub fn with_read<R>(&self, f: impl FnOnce(&QueryEngine) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` under a single write-lock acquisition.
    ///
    /// Use this when a writer must couple its effect with the state it
    /// produced: e.g. [`QueryEngine::apply_updates`] followed by
    /// [`QueryEngine::update_epoch`] as two separate calls could interleave
    /// with another writer, pairing this update's summary with a later
    /// update's epoch.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut QueryEngine) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Applies a batch of graph updates atomically while no query is in
    /// flight (see [`QueryEngine::apply_updates`]); a rejected batch leaves
    /// the engine untouched.
    pub fn apply_updates(&self, updates: &[GraphUpdate]) -> Result<UpdateSummary, UpdateError> {
        self.with_write(|e| e.apply_updates(updates))
    }

    /// Fallible single-pair SimRank (see [`QueryEngine::try_similarity`]).
    pub fn try_similarity(&self, u: VertexId, v: VertexId) -> Result<f64, QueryError> {
        self.with_read(|e| e.try_similarity(u, v))
    }

    /// Fallible meeting profile (see [`QueryEngine::try_profile`]).
    pub fn try_profile(&self, u: VertexId, v: VertexId) -> Result<MeetingProfile, QueryError> {
        self.with_read(|e| e.try_profile(u, v))
    }

    /// Batch SimRank scores (see [`QueryEngine::batch_similarities`]).
    pub fn batch_similarities(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Vec<f64>, QueryError> {
        self.with_read(|e| e.batch_similarities(pairs))
    }

    /// Batch meeting profiles (see [`QueryEngine::batch_profile`]).
    pub fn batch_profile(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Vec<MeetingProfile>, QueryError> {
        self.with_read(|e| e.batch_profile(pairs))
    }

    /// The `k` highest-scoring pairs (see [`QueryEngine::batch_top_k`]).
    pub fn batch_top_k(
        &self,
        pairs: &[(VertexId, VertexId)],
        k: usize,
    ) -> Result<Vec<ScoredPair>, QueryError> {
        self.with_read(|e| e.batch_top_k(pairs, k))
    }

    /// The `k` candidates most similar to `query` (see
    /// [`QueryEngine::batch_top_k_similar_to`]).
    pub fn batch_top_k_similar_to(
        &self,
        query: VertexId,
        candidates: &[VertexId],
        k: usize,
    ) -> Result<Vec<ScoredVertex>, QueryError> {
        self.with_read(|e| e.batch_top_k_similar_to(query, candidates, k))
    }

    /// How many update batches the engine has applied.
    pub fn update_epoch(&self) -> u64 {
        self.with_read(QueryEngine::update_epoch)
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.with_read(QueryEngine::num_vertices)
    }

    /// Number of live arcs (base arcs plus inserts minus deletes).
    pub fn num_arcs(&self) -> usize {
        self.with_read(QueryEngine::num_arcs)
    }

    /// The configuration in use (copied out; the config never changes after
    /// construction).
    pub fn config(&self) -> SimRankConfig {
        self.with_read(|e| *e.config())
    }

    /// Materialises the live graph as an [`UncertainGraph`] snapshot.
    pub fn snapshot(&self) -> UncertainGraph {
        self.with_read(QueryEngine::snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn shared_answers_match_the_exclusive_engine() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(200).with_seed(7);
        let shared = SharedQueryEngine::new(&g, config);
        let exclusive = QueryEngine::new(&g, config);
        let pairs: Vec<(VertexId, VertexId)> =
            (0..5).flat_map(|u| (0..5).map(move |v| (u, v))).collect();
        assert_eq!(
            shared.batch_similarities(&pairs).unwrap(),
            exclusive.batch_similarities(&pairs).unwrap()
        );
        assert_eq!(
            shared.try_similarity(0, 1).unwrap(),
            exclusive.similarity(0, 1)
        );
        assert_eq!(shared.try_profile(2, 3).unwrap(), exclusive.profile(2, 3));
        assert_eq!(
            shared.batch_top_k(&pairs, 3).unwrap(),
            exclusive.batch_top_k(&pairs, 3).unwrap()
        );
        assert_eq!(
            shared.batch_top_k_similar_to(0, &[1, 2, 3, 4], 2).unwrap(),
            exclusive
                .batch_top_k_similar_to(0, &[1, 2, 3, 4], 2)
                .unwrap()
        );
        assert_eq!(shared.num_vertices(), 5);
        assert_eq!(shared.num_arcs(), 8);
        assert_eq!(shared.config(), config);
    }

    #[test]
    fn concurrent_readers_and_a_writer_stay_deterministic() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(100).with_seed(3);
        let shared = std::sync::Arc::new(SharedQueryEngine::new(&g, config));
        let pairs: Vec<(VertexId, VertexId)> = vec![(0, 1), (1, 2), (2, 3), (3, 4)];

        // Hammer the engine from several reader threads while one writer
        // applies update batches; every response must pair a consistent
        // (epoch, scores) couple.
        let mut readers = Vec::new();
        for _ in 0..4 {
            let shared = std::sync::Arc::clone(&shared);
            let pairs = pairs.clone();
            readers.push(std::thread::spawn(move || {
                let mut observed = Vec::new();
                for _ in 0..20 {
                    let (epoch, scores) = shared
                        .with_read(|e| (e.update_epoch(), e.batch_similarities(&pairs).unwrap()));
                    observed.push((epoch, scores));
                }
                observed
            }));
        }
        let writer = {
            let shared = std::sync::Arc::clone(&shared);
            std::thread::spawn(move || {
                for round in 0..5u64 {
                    let p = 0.1 + 0.15 * round as f64;
                    shared
                        .apply_updates(&[GraphUpdate::SetProbability {
                            source: 0,
                            target: 2,
                            probability: p,
                        }])
                        .unwrap();
                }
            })
        };
        writer.join().unwrap();
        assert_eq!(shared.update_epoch(), 5);

        // Rebuild reference engines for every epoch's graph state and check
        // each observation against the matching reference.
        let g0 = fig1_graph();
        let mut reference = Vec::new();
        let mut probe = QueryEngine::new(&g0, config);
        reference.push(probe.batch_similarities(&pairs).unwrap());
        for round in 0..5u64 {
            let p = 0.1 + 0.15 * round as f64;
            probe
                .apply_updates(&[GraphUpdate::SetProbability {
                    source: 0,
                    target: 2,
                    probability: p,
                }])
                .unwrap();
            reference.push(probe.batch_similarities(&pairs).unwrap());
        }
        for reader in readers {
            for (epoch, scores) in reader.join().unwrap() {
                assert_eq!(
                    scores, reference[epoch as usize],
                    "epoch {epoch} answer diverged from the reference engine"
                );
            }
        }
    }

    #[test]
    fn rejected_updates_and_bad_queries_stay_typed() {
        let g = fig1_graph();
        let shared = SharedQueryEngine::new(&g, SimRankConfig::default().with_samples(10));
        assert_eq!(
            shared
                .apply_updates(&[GraphUpdate::DeleteArc {
                    source: 0,
                    target: 4
                }])
                .unwrap_err(),
            UpdateError::ArcNotFound {
                source: 0,
                target: 4
            }
        );
        assert_eq!(shared.update_epoch(), 0);
        assert_eq!(
            shared.try_similarity(0, 99).unwrap_err(),
            QueryError::VertexOutOfRange {
                vertex: 99,
                num_vertices: 5
            }
        );
        assert!(shared.batch_profile(&[(99, 0)]).is_err());
    }

    #[test]
    fn into_engine_round_trips() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(50).with_seed(11);
        let shared = SharedQueryEngine::new(&g, config);
        let before = shared.try_similarity(1, 2).unwrap();
        let engine = shared.into_engine();
        assert_eq!(engine.similarity(1, 2), before);
        let snapshot = SharedQueryEngine::from_engine(engine).snapshot();
        assert_eq!(snapshot.num_arcs(), g.num_arcs());
    }
}
