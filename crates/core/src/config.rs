//! Configuration shared by the SimRank estimators.

/// Direction of the random walks underlying the SimRank measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum WalkDirection {
    /// Walks follow arcs backwards (step to in-neighbors).  This matches the
    /// recursive SimRank definition ("two vertices are similar if their
    /// in-neighbors are similar") and makes Theorem 3 hold against classic
    /// SimRank; it is the default.
    #[default]
    InNeighbors,
    /// Walks follow arcs forwards (step to out-neighbors), i.e. Sections
    /// III–IV of the paper applied verbatim to the input graph.  Equivalent
    /// to `InNeighbors` on the transposed graph.
    OutNeighbors,
}

/// The per-step transition backend of the walk-based engines.
///
/// The two backends are *versioned, pluggable samplers*, not interchangeable
/// implementations of one distribution: answers from different kinds are
/// never comparable bit-for-bit, so the kind participates in the result
/// cache's `ConfigFingerprint` and is surfaced by the serve banner and the
/// `stats` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SamplerKind {
    /// The lazily-instantiated arena sampler (Fig. 4 of the paper): one
    /// uniform draw per possible out-arc on first visit, instantiations
    /// memoized within a walk.  Keeps today's RNG draw order bit-for-bit —
    /// every pre-existing baseline and equivalence test pins this backend —
    /// and is the default.
    #[default]
    Legacy,
    /// Precomputed Walker alias tables over the exact expected one-step
    /// marginals (death mass included): one draw and one 16-byte slot read
    /// per step, independent of degree.  Trades the within-walk
    /// possible-world correlation of `Legacy` for raw walk speed; exact for
    /// horizons ≤ 2 and on certain graphs.
    Alias,
}

impl SamplerKind {
    /// The CLI / banner / stats-frame name of the backend.
    pub fn as_str(&self) -> &'static str {
        match self {
            SamplerKind::Legacy => "legacy",
            SamplerKind::Alias => "alias",
        }
    }
}

impl std::fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SamplerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "legacy" => Ok(SamplerKind::Legacy),
            "alias" => Ok(SamplerKind::Alias),
            other => Err(format!(
                "unknown sampler kind '{other}' (expected 'legacy' or 'alias')"
            )),
        }
    }
}

/// Parameters of the SimRank measure and its estimators.
///
/// Field defaults follow the paper's experimental setting (Section VII-A):
/// `c = 0.6`, `n = 5`, `N = 1000` samples, phase switch `l = 1`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimRankConfig {
    /// The decay factor `c ∈ (0, 1)` of SimRank.
    pub decay: f64,
    /// The number of iterations / walk horizon `n`; the returned value is the
    /// `n`-th SimRank `s⁽ⁿ⁾`, which differs from the limit by at most
    /// `c^{n+1}` (Theorem 2).
    pub horizon: usize,
    /// The number of sampled walk pairs `N` used by the sampling-based
    /// estimators (Lemma 4 relates `N` to the additive error).
    pub num_samples: usize,
    /// The phase-switch step `l` of the two-phase algorithm: meeting
    /// probabilities for `k ≤ l` are computed exactly, the rest are sampled.
    pub phase_switch: usize,
    /// Seed of the estimators' internal random number generators; two
    /// estimators built with the same seed produce identical estimates.
    pub seed: u64,
    /// Walk direction (see [`WalkDirection`]).
    pub direction: WalkDirection,
    /// The per-step transition backend (see [`SamplerKind`]).
    pub sampler: SamplerKind,
}

impl Default for SimRankConfig {
    fn default() -> Self {
        SimRankConfig {
            decay: 0.6,
            horizon: 5,
            num_samples: 1000,
            phase_switch: 1,
            seed: 0x5eed_cafe,
            direction: WalkDirection::InNeighbors,
            sampler: SamplerKind::Legacy,
        }
    }
}

impl SimRankConfig {
    /// Sets the decay factor `c`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < c < 1`.
    pub fn with_decay(mut self, c: f64) -> Self {
        assert!(
            c > 0.0 && c < 1.0,
            "the decay factor must lie in (0, 1), got {c}"
        );
        self.decay = c;
        self
    }

    /// Sets the horizon `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn with_horizon(mut self, n: usize) -> Self {
        assert!(n >= 1, "the horizon must be at least 1");
        self.horizon = n;
        self
    }

    /// Sets the number of sampled walk pairs `N`.
    ///
    /// # Panics
    ///
    /// Panics if `N` is 0.
    pub fn with_samples(mut self, n: usize) -> Self {
        assert!(n >= 1, "the number of samples must be at least 1");
        self.num_samples = n;
        self
    }

    /// Sets the phase-switch step `l` (clamped to the horizon when larger).
    pub fn with_phase_switch(mut self, l: usize) -> Self {
        self.phase_switch = l;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the walk direction.
    pub fn with_direction(mut self, direction: WalkDirection) -> Self {
        self.direction = direction;
        self
    }

    /// Sets the per-step transition backend.
    pub fn with_sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// The phase switch actually used: `min(l, n)`.
    pub fn effective_phase_switch(&self) -> usize {
        self.phase_switch.min(self.horizon)
    }

    /// Validates the configuration, panicking with a clear message on
    /// inconsistent values.  Called by the estimator constructors.
    pub fn validate(&self) {
        assert!(
            self.decay > 0.0 && self.decay < 1.0,
            "the decay factor must lie in (0, 1), got {}",
            self.decay
        );
        assert!(self.horizon >= 1, "the horizon must be at least 1");
        assert!(
            self.num_samples >= 1,
            "the number of samples must be at least 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SimRankConfig::default();
        assert_eq!(c.decay, 0.6);
        assert_eq!(c.horizon, 5);
        assert_eq!(c.num_samples, 1000);
        assert_eq!(c.phase_switch, 1);
        assert_eq!(c.direction, WalkDirection::InNeighbors);
        assert_eq!(c.sampler, SamplerKind::Legacy);
        c.validate();
    }

    #[test]
    fn builder_methods_chain() {
        let c = SimRankConfig::default()
            .with_decay(0.8)
            .with_horizon(7)
            .with_samples(50)
            .with_phase_switch(3)
            .with_seed(99)
            .with_direction(WalkDirection::OutNeighbors)
            .with_sampler(SamplerKind::Alias);
        assert_eq!(c.decay, 0.8);
        assert_eq!(c.horizon, 7);
        assert_eq!(c.num_samples, 50);
        assert_eq!(c.phase_switch, 3);
        assert_eq!(c.seed, 99);
        assert_eq!(c.direction, WalkDirection::OutNeighbors);
        assert_eq!(c.sampler, SamplerKind::Alias);
    }

    #[test]
    fn effective_phase_switch_is_clamped() {
        let c = SimRankConfig::default()
            .with_horizon(3)
            .with_phase_switch(10);
        assert_eq!(c.effective_phase_switch(), 3);
        let c = SimRankConfig::default().with_phase_switch(2);
        assert_eq!(c.effective_phase_switch(), 2);
    }

    #[test]
    fn serde_roundtrip_preserves_every_field() {
        // Configurations are serialisable so experiment manifests and result
        // archives can record exactly which parameters produced a number.
        let config = SimRankConfig::default()
            .with_decay(0.75)
            .with_horizon(6)
            .with_samples(123)
            .with_phase_switch(2)
            .with_seed(99)
            .with_direction(WalkDirection::OutNeighbors)
            .with_sampler(SamplerKind::Alias);
        let json = serde_json::to_string(&config).unwrap();
        assert!(json.contains("\"decay\":0.75"));
        assert!(json.contains("OutNeighbors"));
        assert!(json.contains("Alias"));
        let restored: SimRankConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, config);
    }

    #[test]
    fn sampler_kind_names_roundtrip() {
        for kind in [SamplerKind::Legacy, SamplerKind::Alias] {
            assert_eq!(kind.as_str().parse::<SamplerKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert!("vose".parse::<SamplerKind>().is_err());
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn rejects_bad_decay() {
        let _ = SimRankConfig::default().with_decay(1.0);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn rejects_zero_horizon() {
        let _ = SimRankConfig::default().with_horizon(0);
    }

    #[test]
    #[should_panic(expected = "samples")]
    fn rejects_zero_samples() {
        let _ = SimRankConfig::default().with_samples(0);
    }
}
