//! The two-phase algorithm SR-TS (Section VI-C of the paper).
//!
//! Meeting probabilities for steps `k ≤ l` are computed exactly (they are
//! cheap: the transition rows are still sparse and, for `l = 1`, only `|E|`
//! values exist in total), while steps `l < k ≤ n` are estimated by the
//! sampling procedure.  Corollary 1 bounds the resulting error by
//! `ε(c^{l+1} − cⁿ)` with probability `1 − δ`, an order of magnitude better
//! than plain sampling for `l = 1` and typical similarity magnitudes.

use crate::baseline::working_graph;
use crate::config::SimRankConfig;
use crate::meeting::MeetingProfile;
use crate::SimRankEstimator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rwalk::arena::{CsrSampler, WalkArena, DEAD};
use rwalk::transpr::{transition_rows_from, TransPrOptions};
use ugraph::{CsrGraph, UncertainGraph, VertexId};

/// The two-phase single-pair SimRank estimator (the paper's SR-TS).
///
/// The exact phase runs `TransPr` on the direction-resolved working graph;
/// the sampling phase walks the [`CsrGraph`] compiled from it through a
/// persistent [`WalkArena`] (allocation-free hot loop, RNG-stream-compatible
/// with the original `WalkSampler` implementation).
#[derive(Debug)]
pub struct TwoPhaseEstimator {
    graph: UncertainGraph,
    csr: CsrGraph,
    config: SimRankConfig,
    options: TransPrOptions,
    rng: StdRng,
    arena: WalkArena,
    walk_u: Vec<VertexId>,
    walk_v: Vec<VertexId>,
}

impl TwoPhaseEstimator {
    /// Creates a two-phase estimator for `graph` under `config`.
    pub fn new(graph: &UncertainGraph, config: SimRankConfig) -> Self {
        config.validate();
        let working = working_graph(graph, config.direction);
        let csr = CsrGraph::from_uncertain(&working);
        TwoPhaseEstimator {
            graph: working,
            csr,
            config,
            options: TransPrOptions::default(),
            rng: StdRng::seed_from_u64(config.seed),
            arena: WalkArena::with_capacity(graph.num_vertices()),
            walk_u: Vec::new(),
            walk_v: Vec::new(),
        }
    }

    /// Overrides the `TransPr` options used by the exact phase.
    pub fn with_transpr_options(mut self, options: TransPrOptions) -> Self {
        self.options = options;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimRankConfig {
        &self.config
    }

    /// Meeting probabilities with `m(k)` exact for `k ≤ l` and sampled for
    /// `l < k ≤ n` (Eq. 15).
    pub fn profile(&mut self, u: VertexId, v: VertexId) -> MeetingProfile {
        let n = self.config.horizon;
        let l = self.config.effective_phase_switch();
        let num_samples = self.config.num_samples;
        let mut meeting = vec![0.0; n + 1];
        meeting[0] = if u == v { 1.0 } else { 0.0 };

        // Phase 1: exact meeting probabilities for 1 <= k <= l.
        if l >= 1 {
            let rows_u = transition_rows_from(&self.graph, u, l, &self.options)
                .expect("TransPr walk budget exceeded in the exact phase; lower phase_switch");
            let rows_v = if u == v {
                rows_u.clone()
            } else {
                transition_rows_from(&self.graph, v, l, &self.options)
                    .expect("TransPr walk budget exceeded in the exact phase; lower phase_switch")
            };
            for k in 1..=l {
                meeting[k] = rows_u[k].dot(&rows_v[k]);
            }
        }

        // Phase 2: sampled meeting probabilities for l < k <= n, walked on
        // the CSR fast path (the working graph's forward view).
        if l < n {
            let sampler = CsrSampler::new(self.csr.forward());
            for _ in 0..num_samples {
                sampler.sample_walk_into(&mut self.arena, u, n, &mut self.rng, &mut self.walk_u);
                sampler.sample_walk_into(&mut self.arena, v, n, &mut self.rng, &mut self.walk_v);
                for (k, slot) in meeting.iter_mut().enumerate().take(n + 1).skip(l + 1) {
                    let a = self.walk_u[k];
                    if a != DEAD && a == self.walk_v[k] {
                        *slot += 1.0;
                    }
                }
            }
            for slot in meeting.iter_mut().skip(l + 1) {
                *slot /= num_samples as f64;
            }
        }
        MeetingProfile::new(meeting, self.config.decay)
    }
}

impl SimRankEstimator for TwoPhaseEstimator {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.profile(u, v).score()
    }

    fn name(&self) -> &'static str {
        "SR-TS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEstimator;
    use crate::sampling::SamplingEstimator;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    fn average_relative_error(
        baseline: &BaselineEstimator,
        estimates: &mut dyn FnMut(u32, u32) -> f64,
        pairs: &[(u32, u32)],
    ) -> f64 {
        let mut total = 0.0;
        let mut counted = 0usize;
        for &(u, v) in pairs {
            let exact = baseline.try_similarity(u, v).unwrap();
            if exact <= 1e-9 {
                continue;
            }
            total += (estimates(u, v) - exact).abs() / exact;
            counted += 1;
        }
        total / counted as f64
    }

    #[test]
    fn exact_phase_steps_match_the_baseline_exactly() {
        let g = fig1_graph();
        let config = SimRankConfig::default()
            .with_phase_switch(3)
            .with_samples(50);
        let baseline = BaselineEstimator::new(&g, config);
        let mut two_phase = TwoPhaseEstimator::new(&g, config);
        let exact = baseline.profile(0, 1);
        let mixed = two_phase.profile(0, 1);
        for k in 0..=3 {
            assert!(
                (exact.meeting[k] - mixed.meeting[k]).abs() < 1e-12,
                "step {k} should be exact"
            );
        }
    }

    #[test]
    fn phase_switch_equal_to_horizon_reproduces_the_baseline() {
        let g = fig1_graph();
        let config = SimRankConfig::default()
            .with_phase_switch(5)
            .with_samples(1); // sampling phase is empty, so 1 sample suffices
        let baseline = BaselineEstimator::new(&g, config);
        let mut two_phase = TwoPhaseEstimator::new(&g, config);
        for u in g.vertices() {
            for v in g.vertices() {
                let exact = baseline.try_similarity(u, v).unwrap();
                let mixed = two_phase.similarity(u, v);
                assert!((exact - mixed).abs() < 1e-12, "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn estimates_are_close_to_the_baseline() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(3000).with_seed(41);
        let baseline = BaselineEstimator::new(&g, config);
        let mut two_phase = TwoPhaseEstimator::new(&g, config);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (0, 3)] {
            let exact = baseline.try_similarity(u, v).unwrap();
            let estimate = two_phase.similarity(u, v);
            assert!(
                (exact - estimate).abs() < 0.03,
                "pair ({u},{v}): exact {exact}, two-phase {estimate}"
            );
        }
    }

    #[test]
    fn two_phase_is_more_accurate_than_plain_sampling_on_average() {
        // The headline claim of Section VI-C: with the same number of
        // samples, SR-TS has a smaller (relative) error than Sampling,
        // because the dominant low-k terms are exact.  Use a deliberately
        // small N so the sampling noise is visible.
        let g = fig1_graph();
        let pairs: Vec<(u32, u32)> = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let config = SimRankConfig::default().with_samples(60);
        let baseline = BaselineEstimator::new(&g, config);

        let trials = 30;
        let mut sampling_error_total = 0.0;
        let mut two_phase_error_total = 0.0;
        for trial in 0..trials {
            let seeded = config.with_seed(1000 + trial);
            let mut sampling = SamplingEstimator::new(&g, seeded);
            let mut two_phase = TwoPhaseEstimator::new(&g, seeded.with_phase_switch(2));
            sampling_error_total +=
                average_relative_error(&baseline, &mut |u, v| sampling.similarity(u, v), &pairs);
            two_phase_error_total +=
                average_relative_error(&baseline, &mut |u, v| two_phase.similarity(u, v), &pairs);
        }
        assert!(
            two_phase_error_total < sampling_error_total,
            "SR-TS average relative error {:.4} should beat Sampling {:.4}",
            two_phase_error_total / trials as f64,
            sampling_error_total / trials as f64
        );
    }

    #[test]
    fn larger_phase_switch_reduces_error_on_average() {
        let g = fig1_graph();
        let pairs: Vec<(u32, u32)> = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let base_config = SimRankConfig::default().with_samples(40);
        let baseline = BaselineEstimator::new(&g, base_config);
        let trials = 30;
        let mut error_l1 = 0.0;
        let mut error_l4 = 0.0;
        for trial in 0..trials {
            let seeded = base_config.with_seed(7000 + trial);
            let mut with_l1 = TwoPhaseEstimator::new(&g, seeded.with_phase_switch(1));
            let mut with_l4 = TwoPhaseEstimator::new(&g, seeded.with_phase_switch(4));
            error_l1 +=
                average_relative_error(&baseline, &mut |u, v| with_l1.similarity(u, v), &pairs);
            error_l4 +=
                average_relative_error(&baseline, &mut |u, v| with_l4.similarity(u, v), &pairs);
        }
        assert!(
            error_l4 < error_l1,
            "l = 4 error {error_l4} should be below l = 1 error {error_l1}"
        );
    }

    #[test]
    fn deterministic_for_a_fixed_seed_and_name() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(200).with_seed(9);
        let mut a = TwoPhaseEstimator::new(&g, config);
        let mut b = TwoPhaseEstimator::new(&g, config);
        assert_eq!(a.similarity(1, 3), b.similarity(1, 3));
        assert_eq!(a.name(), "SR-TS");
    }
}
