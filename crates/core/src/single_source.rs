//! Single-source SimRank: `s(u, v)` for one source `u` and *every* vertex `v`
//! of the uncertain graph in one pass.
//!
//! The paper's estimators are single-pair: answering a top-k query over all
//! `|V|` candidates with them costs `|V|` independent queries.  This module
//! provides the natural extension used by the case studies (Fig. 13 / 14) and
//! the CLI: per sample `i`, one shared *functional instantiation* of the graph
//! is drawn (every vertex keeps at most one of its out-arcs, exactly as the
//! offline filter vectors of SR-SP do), under which the walk from **every**
//! vertex is determined simultaneously.  Advancing all walks one step costs
//! `O(|V|)`, so one sample yields the positions of all `|V|` target walks at
//! every step `k ≤ n`, and `N` samples estimate all meeting probabilities
//! `m(k)(u, ·)` at once:
//!
//! ```text
//! cost ≈ N · (|E| + n·|V|)      versus      |V| · cost(single-pair query).
//! ```
//!
//! The source side stays *independent* of the shared target-side
//! instantiation (the same consideration as the independent filter vectors of
//! [`crate::SpeedupEstimator`]): either a fresh lazily-instantiated walk is
//! sampled per sample ([`SourceMode::Sampled`]), or the exact transition rows
//! `Pr(u →ₖ ·)` are computed once and the sampled target position is scored
//! against them ([`SourceMode::Exact`], lower variance, cost of one exact
//! single-source `TransPr`).

use crate::baseline::working_graph;
use crate::config::SimRankConfig;
use crate::meeting::combine_meeting_probabilities;
use crate::top_k::ScoredVertex;
use crate::SimRankEstimator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rwalk::arena::{CsrSampler, WalkArena};
use rwalk::transpr::{transition_rows_from, TransPrError, TransPrOptions};
use ugraph::{CsrGraph, CsrView, UncertainGraph, VertexId};

/// How the source-side walk distribution is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceMode {
    /// Sample one independent lazily-instantiated walk from the source per
    /// sample (the default; always applicable).
    #[default]
    Sampled,
    /// Compute the exact transition rows `Pr(u →ₖ ·)` once with `TransPr` and
    /// score the sampled target positions against them.  Lower variance, but
    /// subject to the exact walk enumeration's budget (it fails on dense
    /// graphs with large horizons just like the Baseline estimator does).
    Exact,
}

/// The result of a single-source query: the estimated SimRank of the source
/// against every vertex, plus the per-step meeting probabilities behind it.
#[derive(Debug, Clone)]
pub struct SingleSourceResult {
    source: VertexId,
    decay: f64,
    /// `meeting[k][v]` is the estimate of `m(k)(source, v)`.
    meeting: Vec<Vec<f64>>,
}

impl SingleSourceResult {
    /// The query vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The horizon `n` of the underlying configuration.
    pub fn horizon(&self) -> usize {
        self.meeting.len() - 1
    }

    /// Number of vertices covered by the query.
    pub fn num_vertices(&self) -> usize {
        self.meeting[0].len()
    }

    /// The estimated meeting probability `m(k)(source, v)`.
    pub fn meeting_probability(&self, k: usize, v: VertexId) -> f64 {
        self.meeting[k][v as usize]
    }

    /// The estimated SimRank `s⁽ⁿ⁾(source, v)`.
    pub fn similarity(&self, v: VertexId) -> f64 {
        let per_step: Vec<f64> = self.meeting.iter().map(|row| row[v as usize]).collect();
        combine_meeting_probabilities(&per_step, self.decay)
    }

    /// The estimated SimRank of the source against every vertex, indexed by
    /// vertex id.
    pub fn similarities(&self) -> Vec<f64> {
        (0..self.num_vertices())
            .map(|v| self.similarity(v as VertexId))
            .collect()
    }

    /// The `k` vertices most similar to the source, in decreasing score order
    /// (ties broken by vertex id); the source itself is excluded.
    pub fn top_k(&self, k: usize) -> Vec<ScoredVertex> {
        let mut scored: Vec<ScoredVertex> = (0..self.num_vertices() as VertexId)
            .filter(|&v| v != self.source)
            .map(|v| ScoredVertex {
                vertex: v,
                score: self.similarity(v),
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.vertex.cmp(&b.vertex))
        });
        scored.truncate(k);
        scored
    }
}

/// Single-source SimRank estimator (`s(u, v)` for all `v` at once).
///
/// The per-sample functional instantiation and the source-side walks both
/// run on the [`CsrGraph`] compiled from the working graph (flat arrays, a
/// persistent [`WalkArena`]); the working [`UncertainGraph`] is kept for the
/// exact `TransPr` rows of [`SourceMode::Exact`].
#[derive(Debug)]
pub struct SingleSourceEstimator {
    graph: UncertainGraph,
    csr: CsrGraph,
    config: SimRankConfig,
    options: TransPrOptions,
    source_mode: SourceMode,
    rng: StdRng,
    arena: WalkArena,
    source_walk: Vec<VertexId>,
}

impl SingleSourceEstimator {
    /// Creates a single-source estimator for `graph` under `config`.
    pub fn new(graph: &UncertainGraph, config: SimRankConfig) -> Self {
        config.validate();
        let working = working_graph(graph, config.direction);
        let csr = CsrGraph::from_uncertain(&working);
        SingleSourceEstimator {
            graph: working,
            csr,
            config,
            options: TransPrOptions::default(),
            source_mode: SourceMode::Sampled,
            rng: StdRng::seed_from_u64(config.seed),
            arena: WalkArena::with_capacity(graph.num_vertices()),
            source_walk: Vec::new(),
        }
    }

    /// Overrides the `TransPr` options used when [`SourceMode::Exact`] is
    /// selected.
    pub fn with_transpr_options(mut self, options: TransPrOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects how the source-side walk distribution is obtained.
    pub fn with_source_mode(mut self, mode: SourceMode) -> Self {
        self.source_mode = mode;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimRankConfig {
        &self.config
    }

    /// The source mode in use.
    pub fn source_mode(&self) -> SourceMode {
        self.source_mode
    }

    /// Draws one functional instantiation of the graph: every vertex keeps at
    /// most one out-arc (each arc is instantiated with its probability, one
    /// survivor is chosen uniformly), exactly as the per-sample offline
    /// filter-vector construction of SR-SP.  Walks the flat CSR arrays.
    fn sample_functional_map(
        view: CsrView<'_>,
        rng: &mut StdRng,
        next: &mut [Option<VertexId>],
        choices: &mut Vec<VertexId>,
    ) {
        for (w, slot) in next.iter_mut().enumerate().take(view.num_vertices()) {
            let neighbors = view.neighbors(w as VertexId);
            let probabilities = view.probabilities(w as VertexId);
            choices.clear();
            for (&x, &p) in neighbors.iter().zip(probabilities) {
                if rng.gen::<f64>() < p {
                    choices.push(x);
                }
            }
            *slot = if choices.is_empty() {
                None
            } else {
                Some(choices[rng.gen_range(0..choices.len())])
            };
        }
    }

    /// Runs the query, returning an error when [`SourceMode::Exact`] is
    /// selected and the exact walk enumeration exceeds its budget.
    pub fn try_query(&mut self, source: VertexId) -> Result<SingleSourceResult, TransPrError> {
        let n = self.config.horizon;
        let num_samples = self.config.num_samples;
        let num_vertices = self.graph.num_vertices();
        assert!(
            (source as usize) < num_vertices,
            "source vertex {source} out of range (graph has {num_vertices} vertices)"
        );

        // Exact source rows, if requested (computed once, reused per sample).
        let exact_rows = match self.source_mode {
            SourceMode::Exact => Some(transition_rows_from(&self.graph, source, n, &self.options)?),
            SourceMode::Sampled => None,
        };

        // counts[k][v] accumulates per-sample meeting indicators (Sampled) or
        // exact source probabilities at the sampled target position (Exact).
        let mut counts = vec![vec![0.0f64; num_vertices]; n + 1];
        let mut next: Vec<Option<VertexId>> = vec![None; num_vertices];
        let mut positions: Vec<Option<VertexId>> = vec![None; num_vertices];
        let mut choices: Vec<VertexId> = Vec::new();

        let sampler = CsrSampler::new(self.csr.forward());
        for _ in 0..num_samples {
            // Source side: one independent walk (only needed in Sampled
            // mode), sampled allocation-free through the walk arena.
            let sampled_source = exact_rows.is_none();
            if sampled_source {
                sampler.sample_walk_into(
                    &mut self.arena,
                    source,
                    n,
                    &mut self.rng,
                    &mut self.source_walk,
                );
            }

            // Target side: one shared functional instantiation drives the
            // walks of all vertices simultaneously.
            Self::sample_functional_map(self.csr.forward(), &mut self.rng, &mut next, &mut choices);
            for (v, slot) in positions.iter_mut().enumerate() {
                *slot = Some(v as VertexId);
            }
            for k in 1..=n {
                for v in 0..num_vertices {
                    positions[v] = positions[v].and_then(|w| next[w as usize]);
                    let Some(w) = positions[v] else { continue };
                    match &exact_rows {
                        Some(rows) => counts[k][v] += rows[k].get(w),
                        None => {
                            // DEAD never equals a live vertex id, so a dead
                            // source walk simply never scores.
                            if self.source_walk[k] == w {
                                counts[k][v] += 1.0;
                            }
                        }
                    }
                }
            }
        }

        let mut meeting = vec![vec![0.0f64; num_vertices]; n + 1];
        meeting[0][source as usize] = 1.0;
        for k in 1..=n {
            for v in 0..num_vertices {
                meeting[k][v] = counts[k][v] / num_samples as f64;
            }
        }
        Ok(SingleSourceResult {
            source,
            decay: self.config.decay,
            meeting,
        })
    }

    /// Runs the query; panics if the exact phase exceeds its walk budget
    /// (only possible with [`SourceMode::Exact`]).
    pub fn query(&mut self, source: VertexId) -> SingleSourceResult {
        self.try_query(source)
            .expect("TransPr walk budget exceeded; use SourceMode::Sampled or raise max_walks")
    }

    /// Convenience: the `k` vertices most similar to `source`.
    pub fn top_k(&mut self, source: VertexId, k: usize) -> Vec<ScoredVertex> {
        self.query(source).top_k(k)
    }
}

impl SimRankEstimator for SingleSourceEstimator {
    /// Single-pair similarity via a full single-source pass; provided so the
    /// estimator plugs into the shared harness, but a dedicated single-pair
    /// estimator is cheaper when only one target is needed.
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.query(u).similarity(v)
    }

    fn name(&self) -> &'static str {
        "SingleSource"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEstimator;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn sampled_mode_is_close_to_the_baseline_for_every_target() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(6000).with_seed(17);
        let baseline = BaselineEstimator::new(&g, config);
        let mut single = SingleSourceEstimator::new(&g, config);
        let result = single.query(1);
        for v in g.vertices() {
            let exact = baseline.try_similarity(1, v).unwrap();
            let estimate = result.similarity(v);
            assert!(
                (exact - estimate).abs() < 0.04,
                "target {v}: exact {exact}, single-source {estimate}"
            );
        }
    }

    #[test]
    fn exact_source_mode_is_close_and_lower_noise() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(3000).with_seed(23);
        let baseline = BaselineEstimator::new(&g, config);
        let mut single = SingleSourceEstimator::new(&g, config).with_source_mode(SourceMode::Exact);
        let result = single.try_query(0).unwrap();
        for v in g.vertices() {
            let exact = baseline.try_similarity(0, v).unwrap();
            let estimate = result.similarity(v);
            assert!(
                (exact - estimate).abs() < 0.04,
                "target {v}: exact {exact}, single-source(exact) {estimate}"
            );
        }
    }

    #[test]
    fn self_meeting_probability_at_step_zero_is_one() {
        let g = fig1_graph();
        let mut single =
            SingleSourceEstimator::new(&g, SimRankConfig::default().with_samples(100).with_seed(3));
        let result = single.query(2);
        assert_eq!(result.meeting_probability(0, 2), 1.0);
        for v in g.vertices() {
            if v != 2 {
                assert_eq!(result.meeting_probability(0, v), 0.0);
            }
        }
        assert_eq!(result.source(), 2);
        assert_eq!(result.num_vertices(), 5);
        assert_eq!(result.horizon(), 5);
    }

    #[test]
    fn scores_are_probability_like_and_deterministic_per_seed() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(500).with_seed(9);
        let first = SingleSourceEstimator::new(&g, config)
            .query(0)
            .similarities();
        let second = SingleSourceEstimator::new(&g, config)
            .query(0)
            .similarities();
        assert_eq!(first, second, "same seed must give identical estimates");
        for (v, s) in first.iter().enumerate() {
            assert!((0.0..=1.0 + 1e-12).contains(s), "s(0,{v}) = {s}");
        }
        let different_seed = SingleSourceEstimator::new(&g, config.with_seed(10))
            .query(0)
            .similarities();
        assert_ne!(
            first, different_seed,
            "different seeds should perturb the estimate"
        );
    }

    #[test]
    fn top_k_is_sorted_excludes_the_source_and_truncates() {
        let g = fig1_graph();
        let mut single =
            SingleSourceEstimator::new(&g, SimRankConfig::default().with_samples(800).with_seed(5));
        let top = single.top_k(1, 3);
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|s| s.vertex != 1));
        for window in top.windows(2) {
            assert!(window[0].score >= window[1].score);
        }
        // Asking for more than |V| - 1 returns everything once.
        let all = single.top_k(1, 100);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn single_pair_trait_view_matches_the_full_query() {
        let g = fig1_graph();
        let config = SimRankConfig::default().with_samples(400).with_seed(7);
        let mut via_trait = SingleSourceEstimator::new(&g, config);
        let mut via_query = SingleSourceEstimator::new(&g, config);
        let s_trait = via_trait.similarity(0, 3);
        let s_query = via_query.query(0).similarity(3);
        assert!((s_trait - s_query).abs() < 1e-12);
        assert_eq!(via_trait.name(), "SingleSource");
    }

    #[test]
    fn dead_end_vertices_are_handled() {
        // Vertex 2 has no out-arcs in the transposed graph (no in-arcs in the
        // original): walks from it die immediately, so its similarity to
        // everything but itself is the k = 0 term only.
        let g = UncertainGraphBuilder::new(3)
            .arc(2, 0, 0.9)
            .arc(2, 1, 0.8)
            .build()
            .unwrap();
        let mut single = SingleSourceEstimator::new(
            &g,
            SimRankConfig::default().with_samples(300).with_seed(11),
        );
        let result = single.query(2);
        for v in 0..2u32 {
            assert_eq!(result.similarity(v), 0.0);
        }
        let self_similarity = result.similarity(2);
        assert!(self_similarity > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = fig1_graph();
        let mut single = SingleSourceEstimator::new(&g, SimRankConfig::default());
        let _ = single.query(99);
    }
}
