//! Du et al.'s probabilistic SimRank (the paper's SimRank-III baseline).
//!
//! The prior work \[7\] (Du et al., *Probabilistic SimRank computation over
//! uncertain graphs*, Information Sciences 2015) assumes that the k-step
//! transition probability matrix of an uncertain graph is the k-th power of
//! the expected one-step matrix, `W(k) = (W(1))^k`.  Section IV of the
//! reproduced paper shows this is wrong whenever a walk can leave the same
//! vertex twice (the transitions are correlated through the shared possible
//! world), and the measure-comparison experiment (Fig. 7 / Table III) uses
//! this estimator as the SimRank-III column.
//!
//! The estimator below is therefore *deliberately* the incorrect-by-design
//! baseline: it computes the exact expected one-step matrix and then treats
//! the walk as Markovian with that matrix.

use crate::baseline::working_graph;
use crate::config::SimRankConfig;
use crate::meeting::MeetingProfile;
use crate::SimRankEstimator;
use rwalk::expected::expected_one_step_matrix;
use ugraph::{UncertainGraph, VertexId};
use umatrix::{SparseMatrix, SparseVector};

/// The SimRank-III estimator: uncertain SimRank under the (unsound)
/// assumption `W(k) = (W(1))^k`.
#[derive(Debug, Clone)]
pub struct DuEtAlEstimator {
    transition: SparseMatrix,
    config: SimRankConfig,
}

impl DuEtAlEstimator {
    /// Creates the estimator for `graph` under `config`.
    pub fn new(graph: &UncertainGraph, config: SimRankConfig) -> Self {
        config.validate();
        let working = working_graph(graph, config.direction);
        DuEtAlEstimator {
            transition: expected_one_step_matrix(&working),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimRankConfig {
        &self.config
    }

    /// Meeting probabilities under the Markovian assumption.
    pub fn profile(&self, u: VertexId, v: VertexId) -> MeetingProfile {
        let n = self.config.horizon;
        let mut meeting = Vec::with_capacity(n + 1);
        meeting.push(if u == v { 1.0 } else { 0.0 });
        let mut row_u = SparseVector::unit(u, 1.0);
        let mut row_v = SparseVector::unit(v, 1.0);
        for _ in 1..=n {
            row_u = self.transition.vecmat(&row_u);
            row_v = self.transition.vecmat(&row_v);
            meeting.push(row_u.dot(&row_v));
        }
        MeetingProfile::new(meeting, self.config.decay)
    }
}

impl SimRankEstimator for DuEtAlEstimator {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.profile(u, v).score()
    }

    fn name(&self) -> &'static str {
        "SimRank-III (Du et al.)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineEstimator;
    use crate::deterministic::simrank_all_pairs;
    use ugraph::UncertainGraphBuilder;

    fn fig1_graph() -> UncertainGraph {
        UncertainGraphBuilder::new(5)
            .arc(0, 2, 0.8)
            .arc(0, 3, 0.5)
            .arc(1, 0, 0.8)
            .arc(1, 2, 0.9)
            .arc(2, 0, 0.7)
            .arc(2, 3, 0.6)
            .arc(3, 4, 0.6)
            .arc(3, 1, 0.8)
            .build()
            .unwrap()
    }

    #[test]
    fn agrees_with_exact_measure_up_to_two_steps() {
        // W(1) and W(2) = (W(1))^2 are still exact, so for horizon n <= 2 the
        // Du et al. estimator coincides with the Baseline.
        let g = fig1_graph();
        let config = SimRankConfig::default().with_horizon(2);
        let baseline = BaselineEstimator::new(&g, config);
        let mut du = DuEtAlEstimator::new(&g, config);
        for u in g.vertices() {
            for v in g.vertices() {
                let exact = baseline.try_similarity(u, v).unwrap();
                let approx = du.similarity(u, v);
                assert!(
                    (exact - approx).abs() < 1e-10,
                    "pair ({u},{v}) at n = 2: {exact} vs {approx}"
                );
            }
        }
    }

    #[test]
    fn differs_from_the_exact_measure_for_longer_horizons() {
        // The unsound Markov assumption starts to matter at k = 3.
        let g = fig1_graph();
        let config = SimRankConfig::default().with_horizon(5);
        let baseline = BaselineEstimator::new(&g, config);
        let mut du = DuEtAlEstimator::new(&g, config);
        let mut max_difference: f64 = 0.0;
        for u in g.vertices() {
            for v in g.vertices() {
                let exact = baseline.try_similarity(u, v).unwrap();
                let approx = du.similarity(u, v);
                max_difference = max_difference.max((exact - approx).abs());
            }
        }
        assert!(
            max_difference > 1e-4,
            "SimRank-III should deviate from the exact measure, max diff {max_difference}"
        );
    }

    #[test]
    fn certain_graph_recovers_classic_simrank() {
        let g = fig1_graph().certain();
        let config = SimRankConfig::default();
        let mut du = DuEtAlEstimator::new(&g, config);
        let det = simrank_all_pairs(g.skeleton(), config.decay, config.horizon);
        for u in g.vertices() {
            for v in g.vertices() {
                let approx = du.similarity(u, v);
                let exact = det[(u as usize, v as usize)];
                assert!(
                    (approx - exact).abs() < 1e-9,
                    "pair ({u},{v}): {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn results_are_symmetric_and_in_range() {
        let g = fig1_graph();
        let mut du = DuEtAlEstimator::new(&g, SimRankConfig::default());
        for u in g.vertices() {
            for v in g.vertices() {
                let s = du.similarity(u, v);
                assert!((0.0..=1.0 + 1e-12).contains(&s));
                assert!((s - du.similarity(v, u)).abs() < 1e-12);
            }
        }
        assert_eq!(du.name(), "SimRank-III (Du et al.)");
    }
}
