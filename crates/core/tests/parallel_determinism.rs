//! Determinism of the parallel batch-query helpers across thread counts.
//!
//! `usim_core::parallel` promises that, for estimators whose answers do not
//! depend on query order (every exact estimator, and any estimator freshly
//! derived from the factory), the batch results are identical regardless of
//! how many rayon workers execute the batch.  These tests pin that promise
//! by running the same batch under 1-thread and N-thread pools.

use rayon::ThreadPoolBuilder;
use ugraph::{UncertainGraph, UncertainGraphBuilder, VertexId};
use usim_core::parallel::{par_mean_similarity, par_similarities, par_top_k_pairs};
use usim_core::{BaselineEstimator, SimRankConfig};

fn fig1_graph() -> UncertainGraph {
    UncertainGraphBuilder::new(5)
        .arc(0, 2, 0.8)
        .arc(0, 3, 0.5)
        .arc(1, 0, 0.8)
        .arc(1, 2, 0.9)
        .arc(2, 0, 0.7)
        .arc(2, 3, 0.6)
        .arc(3, 4, 0.6)
        .arc(3, 1, 0.8)
        .build()
        .unwrap()
}

fn all_ordered_pairs(n: u32) -> Vec<(VertexId, VertexId)> {
    (0..n).flat_map(|u| (0..n).map(move |v| (u, v))).collect()
}

#[test]
fn batch_queries_are_identical_for_1_and_n_threads() {
    let graph = fig1_graph();
    let config = SimRankConfig::default();
    let pairs = all_ordered_pairs(5);

    let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let many = ThreadPoolBuilder::new().num_threads(8).build().unwrap();

    let sequential: Vec<f64> =
        single.install(|| par_similarities(|| BaselineEstimator::new(&graph, config), &pairs));
    let parallel: Vec<f64> =
        many.install(|| par_similarities(|| BaselineEstimator::new(&graph, config), &pairs));

    assert_eq!(sequential.len(), parallel.len());
    for (i, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "pair {i}: 1-thread {a} differs from 8-thread {b}"
        );
    }
}

#[test]
fn top_k_ranking_is_identical_for_1_and_n_threads() {
    let graph = fig1_graph();
    let config = SimRankConfig::default();
    let pairs = all_ordered_pairs(5);

    let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let many = ThreadPoolBuilder::new().num_threads(4).build().unwrap();

    let a =
        single.install(|| par_top_k_pairs(|| BaselineEstimator::new(&graph, config), &pairs, 4));
    let b = many.install(|| par_top_k_pairs(|| BaselineEstimator::new(&graph, config), &pairs, 4));

    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.pair, y.pair);
        assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
}

#[test]
fn mean_similarity_is_identical_for_1_and_n_threads() {
    let graph = fig1_graph();
    let config = SimRankConfig::default();
    let pairs = all_ordered_pairs(5);

    let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let many = ThreadPoolBuilder::new().num_threads(16).build().unwrap();

    let a =
        single.install(|| par_mean_similarity(|| BaselineEstimator::new(&graph, config), &pairs));
    let b = many.install(|| par_mean_similarity(|| BaselineEstimator::new(&graph, config), &pairs));
    assert!(
        (a - b).abs() < 1e-12,
        "means diverged across thread counts: {a} vs {b}"
    );
}
