//! Table II reproduction: summary of the datasets used in the experiments.
//!
//! Prints, for every dataset of the registry, the size of the synthetic
//! stand-in generated at the current scale next to the size published in the
//! paper's Table II.

use ugraph::stats::uncertain_graph_stats;
use usim_bench::{registry, scale_from_env, Table};

fn main() {
    let scale = scale_from_env();
    println!("Table II: datasets (scale = {scale:?}; set USIM_SCALE=paper for published sizes)\n");
    let mut table = Table::new(&[
        "Dataset",
        "|V| (generated)",
        "|E| (generated)",
        "avg degree",
        "mean P(e)",
        "|V| (paper)",
        "|E| (paper)",
    ]);
    for spec in registry(scale) {
        // The largest paper-scale datasets take a long time to generate; skip
        // them unless explicitly requested.
        if spec.num_edges > 20_000_000 {
            table.row(&[
                spec.name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                spec.paper_vertices.to_string(),
                spec.paper_edges.to_string(),
            ]);
            continue;
        }
        let graph = spec.generate();
        let stats = uncertain_graph_stats(&graph);
        table.row(&[
            spec.name.to_string(),
            graph.num_vertices().to_string(),
            // Arcs are stored in both directions; report undirected edges.
            (graph.num_arcs() / 2).to_string(),
            format!("{:.2}", stats.topology.average_out_degree),
            format!("{:.3}", stats.mean_probability),
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
        ]);
    }
    table.print();
}
