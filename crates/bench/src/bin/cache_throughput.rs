//! `cache_throughput` — the CI perf-tracking gate for the result-cache
//! subsystem.
//!
//! Simulates the hot-pair serving workload `usim_cache` exists for: the
//! same batch of popular pairs is asked over and over through the
//! transport-free protocol path ([`usim_server::RequestHandler`], i.e.
//! everything the TCP loop does except sockets — JSON parsing, label
//! resolution, the shared engine's read lock, response serialisation), once
//! against an uncached handler and once against a handler with
//! `--cache-capacity` enabled.  The run writes a
//! `BENCH_cache_throughput.json` artifact and fails when
//!
//! * the **cache ratio** — cached hot-pair throughput divided by same-run
//!   uncached throughput — drops below the acceptance floor of **3x**, or
//! * it regresses more than 2x against the checked-in baseline
//!   (ratio-based like `bench_smoke` / `update_churn` /
//!   `serve_throughput`, so the gate is machine-speed independent).
//!
//! The run also asserts the subsystem's correctness contract on the wire:
//! every response line from the cached handler is **byte-identical** to the
//! uncached handler's — across repeat passes, and again after an update
//! round invalidates the cache by epoch.
//!
//! Environment:
//! * `USIM_BENCH_HOT_PAIRS` — distinct hot pairs per batch frame (default 48)
//! * `USIM_BENCH_SAMPLES`   — walk samples per query (default 120)
//! * `USIM_BENCH_PASSES`    — how often the hot batch is re-asked (default 8)
//! * `USIM_BENCH_CAPACITY`  — cache capacity in entries (default 4096)
//! * `USIM_BENCH_OUT`      — artifact path (default `BENCH_cache_throughput.json`)
//! * `USIM_BENCH_BASELINE` — baseline path (default
//!   `crates/bench/baselines/cache_throughput.json`)

use std::time::Instant;
use ugraph::VertexId;
use usim_bench::random_pairs;
use usim_core::{SharedQueryEngine, SimRankConfig};
use usim_datasets::RmatGenerator;
use usim_server::{RequestHandler, DEFAULT_MAX_BATCH};

/// The measurements the artifact records and the baseline pins.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct CacheReport {
    /// Distinct hot pairs per batch frame.
    hot_pairs: usize,
    /// Walk samples per query.
    samples: usize,
    /// How often the hot batch was re-asked.
    passes: usize,
    /// Cache capacity (entries).
    capacity: usize,
    /// Hot-pair throughput through the uncached protocol path, pairs/sec.
    uncached_pairs_per_sec: f64,
    /// Hot-pair throughput with the result cache enabled, pairs/sec.
    cached_pairs_per_sec: f64,
    /// `cached_pairs_per_sec / uncached_pairs_per_sec` — the gated number.
    cache_ratio: f64,
    /// Cache hits observed during the cached run.
    cache_hits: u64,
}

/// The acceptance floor: repeated-pair serve throughput must improve at
/// least this much with the cache on.
const HARD_FLOOR: f64 = 3.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Formats a pairs batch as one `batch` request frame (the R-MAT graph is
/// compact, so labels == vertex ids).
fn batch_frame(pairs: &[(VertexId, VertexId)]) -> String {
    let mut frame = String::from(r#"{"type":"batch","pairs":["#);
    for (i, (u, v)) in pairs.iter().enumerate() {
        if i > 0 {
            frame.push(',');
        }
        frame.push_str(&format!("[{u},{v}]"));
    }
    frame.push_str("]}");
    frame
}

/// Drives `passes` identical batch frames through a handler, asserting each
/// response equals `expected[pass]` when given; returns the response lines
/// and the elapsed seconds.
fn drive(
    handler: &RequestHandler,
    frame: &str,
    passes: usize,
    expected: Option<&[String]>,
) -> (Vec<String>, f64) {
    let start = Instant::now();
    let mut responses = Vec::with_capacity(passes);
    for pass in 0..passes {
        let response = handler
            .handle_line(frame)
            .expect("batch frames always answer");
        assert!(!response.is_error, "clean run: {}", response.json);
        if let Some(expected) = expected {
            assert_eq!(
                response.json, expected[pass],
                "cached response diverged from uncached on pass {pass}"
            );
        }
        responses.push(response.json);
    }
    (responses, start.elapsed().as_secs_f64())
}

fn main() {
    let hot_pairs = env_usize("USIM_BENCH_HOT_PAIRS", 48);
    let samples = env_usize("USIM_BENCH_SAMPLES", 120);
    let passes = env_usize("USIM_BENCH_PASSES", 8);
    let capacity = env_usize("USIM_BENCH_CAPACITY", 4096);
    let out_path = std::env::var("USIM_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_cache_throughput.json".to_string());
    let baseline_path = std::env::var("USIM_BENCH_BASELINE").unwrap_or_else(|_| {
        format!(
            "{}/baselines/cache_throughput.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });

    let graph = RmatGenerator::small(0xcac4e).generate();
    let pairs = random_pairs(&graph, hot_pairs, 0x40f);
    let config = SimRankConfig::default().with_samples(samples).with_seed(42);
    let labels: Vec<u64> = (0..graph.num_vertices() as u64).collect();
    let uncached = RequestHandler::new(
        SharedQueryEngine::new(&graph, config),
        labels.clone(),
        DEFAULT_MAX_BATCH,
    );
    let cached = RequestHandler::with_cache(
        SharedQueryEngine::new(&graph, config),
        labels,
        DEFAULT_MAX_BATCH,
        capacity,
    );
    let frame = batch_frame(&pairs);

    // Uncached: every pass pays the full sampling cost (each distinct pair
    // once — the engine deduplicates within a frame).
    let (expected, uncached_secs) = drive(&uncached, &frame, passes, None);
    // Cached: pass 0 fills, passes 1.. are served from the cache.  Every
    // response must be byte-identical to the uncached handler's.
    let (_, cached_secs) = drive(&cached, &frame, passes, Some(&expected));
    let stats = cached
        .cached_engine()
        .cache_stats()
        .expect("cache is enabled");
    assert!(stats.hits > 0, "hot passes must hit the cache: {stats:?}");

    // Correctness across an invalidation: one update round through both
    // handlers, then the hot batch again — the cached answers must track
    // the new epoch bit for bit (no stale scores can leak).
    let (source, target) = {
        let arc = graph.arcs().next().expect("R-MAT graphs have arcs");
        (arc.source, arc.target)
    };
    let update = format!(
        r#"{{"type":"update","updates":[{{"op":"set","source":{source},"target":{target},"probability":0.123}}]}}"#
    );
    for handler in [&uncached, &cached] {
        let response = handler.handle_line(&update).expect("update answers");
        assert!(!response.is_error, "{}", response.json);
    }
    let (post_expected, _) = drive(&uncached, &frame, 2, None);
    drive(&cached, &frame, 2, Some(&post_expected));
    assert_ne!(
        expected[0], post_expected[0],
        "the update must change hot-pair scores"
    );
    let final_stats = cached
        .cached_engine()
        .cache_stats()
        .expect("cache is enabled");
    assert!(
        final_stats.stale > 0,
        "post-update asks must read old entries as stale: {final_stats:?}"
    );
    println!(
        "cache_throughput: cached == uncached on the wire across {passes} passes \
         and an epoch invalidation ({} hits, {} misses, {} stale)",
        final_stats.hits, final_stats.misses, final_stats.stale
    );

    let served = (passes * pairs.len()) as f64;
    let report = CacheReport {
        hot_pairs: pairs.len(),
        samples,
        passes,
        capacity,
        uncached_pairs_per_sec: served / uncached_secs,
        cached_pairs_per_sec: served / cached_secs,
        cache_ratio: uncached_secs / cached_secs,
        cache_hits: stats.hits,
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("artifact is writable");
    println!("cache_throughput: {json}");
    println!("cache_throughput: artifact written to {out_path}");

    // Acceptance floor: the cache must be worth at least 3x on hot pairs.
    if report.cache_ratio < HARD_FLOOR {
        eprintln!(
            "cache_throughput: FAIL: hot-pair speedup {:.2}x is below the \
             acceptance floor of {HARD_FLOOR}x",
            report.cache_ratio
        );
        std::process::exit(1);
    }

    // Gate against the checked-in baseline.
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "cache_throughput: WARNING: no baseline at {baseline_path} ({e}); gate skipped"
            );
            return;
        }
    };
    let baseline: CacheReport =
        serde_json::from_str(&baseline_text).expect("baseline parses as CacheReport");
    let floor = baseline.cache_ratio / 2.0;
    println!(
        "cache_throughput: cache ratio {:.2}x (baseline {:.2}x -> floor {:.2}x), \
         uncached {:.0} pairs/sec, cached {:.0} pairs/sec",
        report.cache_ratio,
        baseline.cache_ratio,
        floor,
        report.uncached_pairs_per_sec,
        report.cached_pairs_per_sec
    );
    if report.cache_ratio < floor {
        eprintln!(
            "cache_throughput: FAIL: cached throughput regressed more than 2x \
             versus the uncached path (ratio {:.2} < floor {:.2})",
            report.cache_ratio, floor
        );
        std::process::exit(1);
    }
    println!("cache_throughput: OK");
}
