//! Fig. 7 / Table III reproduction: differences between SimRank-I (the
//! paper's uncertain SimRank) and the other similarity measures.
//!
//! For randomly selected vertex pairs of Net and PPI1, the binary computes
//! SimRank-I (Baseline), SimRank-II (classic SimRank on the skeleton),
//! SimRank-III (Du et al.), Jaccard-I (expected Jaccard over possible worlds)
//! and Jaccard-II (Jaccard on the skeleton), prints the per-pair series that
//! Fig. 7 plots (first few pairs) and the average / maximum / minimum bias of
//! each measure with respect to SimRank-I that Table III summarises.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ugraph::UncertainGraph;
use usim_bench::{dataset, fmt3, pairs_from_env, random_pairs, scale_from_env, Table};
use usim_core::{
    deterministic::simrank_single_pair, BaselineEstimator, DuEtAlEstimator, SimRankConfig,
    SimRankEstimator,
};
use usim_similarity::{jaccard, monte_carlo_expected_jaccard, NeighborhoodMode};

struct Bias {
    name: &'static str,
    values: Vec<f64>,
}

impl Bias {
    fn new(name: &'static str) -> Self {
        Bias {
            name,
            values: Vec::new(),
        }
    }
    fn record(&mut self, reference: f64, other: f64) {
        self.values.push((reference - other).abs());
    }
    fn summary(&self) -> (f64, f64, f64) {
        let sum: f64 = self.values.iter().sum();
        let max = self.values.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.values.iter().cloned().fold(f64::MAX, f64::min);
        (sum / self.values.len() as f64, max, min)
    }
}

fn run_dataset(name: &str, graph: &UncertainGraph, num_pairs: usize) {
    println!(
        "== {name}: {} vertices, {} arcs ==",
        graph.num_vertices(),
        graph.num_arcs()
    );
    let config = SimRankConfig::default();
    let baseline = BaselineEstimator::new(graph, config);
    let mut du = DuEtAlEstimator::new(graph, config);
    let skeleton = graph.skeleton().clone();
    let mut rng = StdRng::seed_from_u64(0xf167);

    let pairs = random_pairs(graph, num_pairs, 0x7ab1e3);
    let mut biases = vec![
        Bias::new("SimRank-II"),
        Bias::new("SimRank-III"),
        Bias::new("Jaccard-I"),
        Bias::new("Jaccard-II"),
    ];
    let mut series = Table::new(&[
        "pair",
        "SimRank-I",
        "SimRank-II",
        "SimRank-III",
        "Jaccard-I",
        "Jaccard-II",
    ]);
    for (index, &(u, v)) in pairs.iter().enumerate() {
        let simrank_1 = match baseline.try_similarity(u, v) {
            Ok(value) => value,
            Err(_) => continue, // walk budget exceeded on a hub; skip the pair
        };
        let simrank_2 = simrank_single_pair(&skeleton, u, v, config.decay, config.horizon);
        let simrank_3 = du.similarity(u, v);
        let jaccard_1 =
            monte_carlo_expected_jaccard(graph, u, v, NeighborhoodMode::In, 2000, &mut rng);
        let jaccard_2 = jaccard(&skeleton, u, v, NeighborhoodMode::In);
        biases[0].record(simrank_1, simrank_2);
        biases[1].record(simrank_1, simrank_3);
        biases[2].record(simrank_1, jaccard_1);
        biases[3].record(simrank_1, jaccard_2);
        if index < 10 {
            series.row(&[
                format!("({u},{v})"),
                fmt3(simrank_1),
                fmt3(simrank_2),
                fmt3(simrank_3),
                fmt3(jaccard_1),
                fmt3(jaccard_2),
            ]);
        }
    }
    println!("\nFig. 7 series (first 10 pairs):");
    series.print();

    println!(
        "\nTable III bias w.r.t. SimRank-I over {} pairs:",
        pairs.len()
    );
    let mut table = Table::new(&["Similarity", "Avg. Bias", "Max. Bias", "Min. Bias"]);
    for bias in &biases {
        let (avg, max, min) = bias.summary();
        table.row(&[bias.name.to_string(), fmt3(avg), fmt3(max), fmt3(min)]);
    }
    table.print();
    println!();
}

fn main() {
    let scale = scale_from_env();
    let num_pairs = pairs_from_env(60);
    println!("Fig. 7 / Table III: differences between similarity measures (scale = {scale:?})\n");
    for name in ["Net", "PPI1"] {
        let graph = dataset(name, scale);
        run_dataset(name, &graph, num_pairs);
    }
}
