//! Fig. 12 reproduction: scalability of SR-TS and SR-SP with respect to the
//! graph size.
//!
//! The paper generates R-MAT graphs with 2M vertices and 2M–10M edges and
//! shows that the average query time of both algorithms grows roughly
//! linearly with the number of edges.  At the default CI scale this binary
//! sweeps 200k–1M edges on 2^18-vertex R-MAT graphs (`USIM_SCALE=paper`
//! restores the published sizes).

use usim_bench::{
    average_millis, fmt_ms, measure, pairs_from_env, random_pairs, scale_from_env, Scale, Table,
};
use usim_core::{SimRankConfig, SimRankEstimator, SpeedupEstimator, TwoPhaseEstimator};
use usim_datasets::RmatGenerator;

fn main() {
    let scale = scale_from_env();
    let num_pairs = pairs_from_env(10);
    let (vertex_scale, edge_counts): (u32, Vec<usize>) = match scale {
        Scale::Ci => (18, vec![200_000, 400_000, 600_000, 800_000, 1_000_000]),
        Scale::Paper => (
            21,
            vec![2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000],
        ),
    };
    println!(
        "Fig. 12: scalability of SR-TS and SR-SP on R-MAT graphs \
         (2^{vertex_scale} vertices, {num_pairs} pairs per point, N = 1000, n = 5, l = 1)\n"
    );

    let mut table = Table::new(&["|E|", "SR-TS time (ms)", "SR-SP time (ms)"]);
    for &num_edges in &edge_counts {
        let generator = RmatGenerator {
            scale: vertex_scale,
            num_edges,
            seed: 0xf12,
            ..Default::default()
        };
        let (graph, generation_time) = measure(|| generator.generate());
        println!(
            "generated |V| = {}, |E| = {} in {:.1}s",
            graph.num_vertices(),
            graph.num_arcs(),
            generation_time.as_secs_f64()
        );
        let pairs = random_pairs(&graph, num_pairs, 0xf12);
        let config = SimRankConfig::default()
            .with_phase_switch(1)
            .with_seed(0xf12);

        let mut two_phase = TwoPhaseEstimator::new(&graph, config);
        let (_, ts_time) = measure(|| {
            for &(u, v) in &pairs {
                let _ = two_phase.similarity(u, v);
            }
        });
        let mut speedup = SpeedupEstimator::new(&graph, config);
        let (_, sp_time) = measure(|| {
            for &(u, v) in &pairs {
                let _ = speedup.similarity(u, v);
            }
        });
        table.row(&[
            num_edges.to_string(),
            fmt_ms(average_millis(ts_time, pairs.len())),
            fmt_ms(average_millis(sp_time, pairs.len())),
        ]);
    }
    println!();
    table.print();
    println!(
        "\nExpected shape: both curves grow roughly linearly with |E| (density drives the cost)."
    );
}
