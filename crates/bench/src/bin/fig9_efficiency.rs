//! Fig. 9 reproduction: execution time of Baseline, Sampling, SR-TS and
//! SR-SP (the latter two with `l = 1, 2, 3`).
//!
//! Reports the average per-query wall-clock time over random vertex pairs of
//! PPI2, Condmat, PPI3 and DBLP (at the current scale).  The Baseline's walk
//! enumeration is capped; datasets on which it exceeds the budget are
//! reported as `n/a`, which reproduces the paper's observation that the
//! exact algorithm stops being practical as graphs grow.

use rwalk::transpr::TransPrOptions;
use usim_bench::{
    average_millis, dataset, fmt_ms, measure, pairs_from_env, random_pairs, scale_from_env, Table,
};
use usim_core::{
    BaselineEstimator, SamplingEstimator, SimRankConfig, SimRankEstimator, SpeedupEstimator,
    TwoPhaseEstimator,
};

fn main() {
    let scale = scale_from_env();
    let num_pairs = pairs_from_env(20);
    let baseline_pairs = num_pairs.min(5);
    println!(
        "Fig. 9: average execution time per query (ms); {num_pairs} pairs per algorithm, \
         {baseline_pairs} for Baseline (scale = {scale:?})\n"
    );

    let mut table = Table::new(&["Algorithm", "PPI2", "Condmat", "PPI3", "DBLP"]);
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Baseline".to_string()],
        vec!["Sampling".to_string()],
        vec!["SR-TS(l=1)".to_string()],
        vec!["SR-TS(l=2)".to_string()],
        vec!["SR-TS(l=3)".to_string()],
        vec!["SR-SP(l=1)".to_string()],
        vec!["SR-SP(l=2)".to_string()],
        vec!["SR-SP(l=3)".to_string()],
    ];

    for name in ["PPI2", "Condmat", "PPI3", "DBLP"] {
        let (graph, generation_time) = measure(|| dataset(name, scale));
        println!(
            "{name}: {} vertices, {} arcs (generated in {:.1}s)",
            graph.num_vertices(),
            graph.num_arcs(),
            generation_time.as_secs_f64()
        );
        let pairs = random_pairs(&graph, num_pairs, 0xf19);
        let config = SimRankConfig::default().with_seed(0xf19);

        // Baseline (exact), with a bounded walk budget.
        let baseline =
            BaselineEstimator::new(&graph, config).with_transpr_options(TransPrOptions {
                max_walks: 200_000,
                prune_threshold: 1e-7,
                ..Default::default()
            });
        let mut feasible = true;
        let (_, baseline_time) = measure(|| {
            for &(u, v) in pairs.iter().take(baseline_pairs) {
                if baseline.try_similarity(u, v).is_err() {
                    feasible = false;
                    break;
                }
            }
        });
        rows[0].push(if feasible {
            fmt_ms(average_millis(baseline_time, baseline_pairs))
        } else {
            "n/a".to_string()
        });

        // Sampling.
        let mut sampling = SamplingEstimator::new(&graph, config);
        let (_, sampling_time) = measure(|| {
            for &(u, v) in &pairs {
                let _ = sampling.similarity(u, v);
            }
        });
        rows[1].push(fmt_ms(average_millis(sampling_time, pairs.len())));

        // SR-TS and SR-SP with l = 1, 2, 3.
        for (offset, l) in (1..=3).enumerate() {
            let cfg = config.with_phase_switch(l);
            let mut two_phase = TwoPhaseEstimator::new(&graph, cfg);
            let (_, time) = measure(|| {
                for &(u, v) in &pairs {
                    let _ = two_phase.similarity(u, v);
                }
            });
            rows[2 + offset].push(fmt_ms(average_millis(time, pairs.len())));
        }
        for (offset, l) in (1..=3).enumerate() {
            let cfg = config.with_phase_switch(l);
            let mut speedup = SpeedupEstimator::new(&graph, cfg);
            let (_, time) = measure(|| {
                for &(u, v) in &pairs {
                    let _ = speedup.similarity(u, v);
                }
            });
            rows[5 + offset].push(fmt_ms(average_millis(time, pairs.len())));
        }
    }

    for row in rows {
        table.row(&row);
    }
    println!();
    table.print();
    println!(
        "\nExpected shape: SR-SP is well below Sampling/SR-TS (the sharing technique), \
         Sampling's time is roughly graph-size independent, and Baseline degrades or \
         becomes infeasible as density grows."
    );
}
