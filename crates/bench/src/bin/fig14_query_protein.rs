//! Fig. 14 reproduction: the top-5 proteins most similar to a query protein.
//!
//! The paper queries the protein BUB1 and reports its top-5 most similar
//! proteins under the uncertain SimRank measure, noting that the top hit
//! (RGA1) is supported by independent biological evidence.  With the
//! planted-complex stand-in, the query protein is a member of a planted
//! complex and the check is how many of its top-5 neighbors by USIM belong to
//! the same complex, contrasted with the deterministic DSIM ranking.

use ugraph::VertexId;
use usim_bench::Table;
use usim_core::{
    top_k::top_k_similar_to, DeterministicSimRank, SimRankConfig, SimRankEstimator,
    SpeedupEstimator,
};
use usim_datasets::PpiGenerator;

struct DsimWrapper(DeterministicSimRank);

impl SimRankEstimator for DsimWrapper {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.0.similarity(u, v)
    }
    fn name(&self) -> &'static str {
        "DSIM"
    }
}

fn main() {
    let dataset = PpiGenerator {
        num_proteins: 500,
        num_complexes: 60,
        complex_size: (4, 7),
        noise_edges: 700,
        seed: 0xf14,
        ..Default::default()
    }
    .generate();
    let graph = &dataset.graph;

    // Query protein: the first member of the first planted complex (the
    // stand-in for BUB1).
    let query = dataset.complexes[0][0];
    let complex = dataset.complex_of[query as usize].expect("query is in a complex");
    println!(
        "Fig. 14: top-5 proteins similar to the query protein {query} \
         (member of planted complex {complex}, size {})\n",
        dataset.complexes[complex].len()
    );

    // Candidates: every protein within two hops of the query.
    let mut candidates = std::collections::HashSet::new();
    for &n1 in graph.out_neighbors(query) {
        candidates.insert(n1);
        for &n2 in graph.out_neighbors(n1) {
            candidates.insert(n2);
        }
    }
    candidates.remove(&query);
    println!("{} candidate proteins within two hops\n", candidates.len());

    let config = SimRankConfig::default().with_samples(500).with_seed(0xf14);
    let mut usim = SpeedupEstimator::new(graph, config);
    let top_usim = top_k_similar_to(&mut usim, query, candidates.iter().copied(), 5);
    let mut dsim = DsimWrapper(DeterministicSimRank::new(
        graph.skeleton(),
        config.decay,
        config.horizon,
    ));
    let top_dsim = top_k_similar_to(&mut dsim, query, candidates.iter().copied(), 5);

    let mut table = Table::new(&[
        "rank",
        "USIM protein",
        "score",
        "same complex?",
        "DSIM protein",
        "score",
        "same complex?",
    ]);
    let mut usim_hits = 0;
    let mut dsim_hits = 0;
    for rank in 0..5 {
        let u = &top_usim[rank];
        let d = &top_dsim[rank];
        let u_hit = dataset.same_complex(query, u.vertex);
        let d_hit = dataset.same_complex(query, d.vertex);
        usim_hits += i32::from(u_hit);
        dsim_hits += i32::from(d_hit);
        table.row(&[
            (rank + 1).to_string(),
            u.vertex.to_string(),
            format!("{:.4}", u.score),
            if u_hit { "yes" } else { "no" }.to_string(),
            d.vertex.to_string(),
            format!("{:.4}", d.score),
            if d_hit { "yes" } else { "no" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nTop-5 in the query's own complex: USIM {usim_hits}/5, DSIM {dsim_hits}/5 \
         (the paper validates its top hit, RGA1 for BUB1, against independent biology)."
    );
}
