//! `cache_churn` — the CI perf-tracking gate for footprint-based cache
//! survival under update churn.
//!
//! Simulates the workload the selective-invalidation machinery exists for:
//! a skewed serving mix keeps re-asking the same hot pairs while update
//! rounds keep landing **elsewhere** in the graph.  The graph is built as
//! disconnected clusters, hot pairs live in the low clusters and every
//! update round rewrites arcs in the highest cluster, so each round's
//! touched-vertex set is disjoint from every hot entry's walk footprint.
//! An epoch-only cache would recompute the entire hot set each round; the
//! footprint cache re-stamps the survivors and serves them as hits.
//!
//! The run drives the transport-free protocol path
//! ([`usim_server::RequestHandler`]) twice — uncached and with
//! `--cache-capacity` — interleaving the hot batch with the update rounds,
//! writes a `BENCH_cache_churn.json` artifact, and fails when
//!
//! * the **churn cache ratio** — cached hot-batch throughput across the
//!   rounds divided by same-run uncached throughput — drops below the
//!   acceptance floor of **3x** (the ISSUE's bar: survivors must make the
//!   cache worth keeping *through* churn, not just between updates), or
//! * it regresses more than 2x against the checked-in baseline
//!   (ratio-based, machine-speed independent).
//!
//! Correctness is asserted on the wire: every cached response line is
//! **byte-identical** to the uncached handler's, every round, after every
//! update — survivors included.
//!
//! Environment:
//! * `USIM_BENCH_CLUSTERS`  — number of 16-vertex clusters (default 64)
//! * `USIM_BENCH_HOT_PAIRS` — distinct hot pairs per batch frame (default 48)
//! * `USIM_BENCH_SAMPLES`   — walk samples per query (default 120)
//! * `USIM_BENCH_ROUNDS`    — update rounds interleaved with asks (default 8)
//! * `USIM_BENCH_CAPACITY`  — cache capacity in entries (default 4096)
//! * `USIM_BENCH_OUT`       — artifact path (default `BENCH_cache_churn.json`)
//! * `USIM_BENCH_BASELINE`  — baseline path (default
//!   `crates/bench/baselines/cache_churn.json`)

use std::time::Instant;
use ugraph::{UncertainGraph, UncertainGraphBuilder, VertexId};
use usim_core::{SharedQueryEngine, SimRankConfig};
use usim_server::{RequestHandler, DEFAULT_MAX_BATCH};

/// Vertices per cluster (kept fixed; the cluster count is the size knob).
const CLUSTER_SIZE: u32 = 16;

/// The measurements the artifact records and the baseline pins.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ChurnReport {
    /// Number of disconnected clusters in the graph.
    clusters: usize,
    /// Distinct hot pairs per batch frame.
    hot_pairs: usize,
    /// Walk samples per query.
    samples: usize,
    /// Update rounds interleaved with the hot asks.
    rounds: usize,
    /// Cache capacity (entries).
    capacity: usize,
    /// Hot-batch throughput through the uncached path across the churn,
    /// pairs/sec.
    uncached_pairs_per_sec: f64,
    /// Hot-batch throughput with the footprint cache, pairs/sec.
    cached_pairs_per_sec: f64,
    /// `cached_pairs_per_sec / uncached_pairs_per_sec` — the gated number.
    cache_ratio: f64,
    /// Fraction of cached-run lookups served as hits.
    hit_rate: f64,
    /// Entries re-stamped across all rounds (disjoint footprints).
    survived: u64,
    /// Entries invalidated across all rounds (intersecting or bloom FP).
    killed: u64,
}

/// The acceptance floor: the hot set must survive churn well enough to be
/// at least this much faster than recomputing every round.
const HARD_FLOOR: f64 = 3.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// `clusters` disconnected 16-vertex components, each a ring with chords —
/// dense enough that walks live for several steps, isolated so a walk's
/// footprint can never leave its cluster.
fn clustered_graph(clusters: u32) -> UncertainGraph {
    let n = (clusters * CLUSTER_SIZE) as usize;
    let mut builder = UncertainGraphBuilder::new(n);
    for c in 0..clusters {
        let base = c * CLUSTER_SIZE;
        for i in 0..CLUSTER_SIZE {
            let v = base + i;
            let ring = base + (i + 1) % CLUSTER_SIZE;
            let chord = base + (i + 3) % CLUSTER_SIZE;
            builder = builder.arc(v, ring, 0.9).arc(v, chord, 0.6);
        }
    }
    builder.build().expect("clustered graph is valid")
}

/// Hot pairs drawn from the low clusters, round-robin (labels == ids).
fn hot_pairs_in_low_clusters(count: usize, clusters: u32) -> Vec<(VertexId, VertexId)> {
    let low = clusters.saturating_sub(1).max(1); // everything but the churn cluster
    (0..count as u32)
        .map(|i| {
            let c = i % low;
            let base = c * CLUSTER_SIZE;
            (base + i % CLUSTER_SIZE, base + (i * 7 + 1) % CLUSTER_SIZE)
        })
        .collect()
}

fn batch_frame(pairs: &[(VertexId, VertexId)]) -> String {
    let mut frame = String::from(r#"{"type":"batch","pairs":["#);
    for (i, (u, v)) in pairs.iter().enumerate() {
        if i > 0 {
            frame.push(',');
        }
        frame.push_str(&format!("[{u},{v}]"));
    }
    frame.push_str("]}");
    frame
}

/// One update round confined to the highest cluster: re-weights a ring arc
/// there.  Both endpoints are in the churn cluster, so the round's touched
/// set is disjoint from every hot footprint.
fn churn_update_frame(clusters: u32, round: usize) -> String {
    let base = (clusters - 1) * CLUSTER_SIZE;
    let i = (round as u32) % CLUSTER_SIZE;
    let (source, target) = (base + i, base + (i + 1) % CLUSTER_SIZE);
    let probability = 0.2 + 0.05 * ((round % 10) as f64);
    format!(
        r#"{{"type":"update","updates":[{{"op":"set","source":{source},"target":{target},"probability":{probability}}}]}}"#
    )
}

fn main() {
    let clusters = env_usize("USIM_BENCH_CLUSTERS", 64).max(2) as u32;
    let hot_pairs = env_usize("USIM_BENCH_HOT_PAIRS", 48);
    let samples = env_usize("USIM_BENCH_SAMPLES", 120);
    let rounds = env_usize("USIM_BENCH_ROUNDS", 8);
    let capacity = env_usize("USIM_BENCH_CAPACITY", 4096);
    let out_path =
        std::env::var("USIM_BENCH_OUT").unwrap_or_else(|_| "BENCH_cache_churn.json".to_string());
    let baseline_path = std::env::var("USIM_BENCH_BASELINE")
        .unwrap_or_else(|_| format!("{}/baselines/cache_churn.json", env!("CARGO_MANIFEST_DIR")));

    let graph = clustered_graph(clusters);
    let pairs = hot_pairs_in_low_clusters(hot_pairs, clusters);
    let config = SimRankConfig::default().with_samples(samples).with_seed(42);
    let labels: Vec<u64> = (0..graph.num_vertices() as u64).collect();
    let uncached = RequestHandler::new(
        SharedQueryEngine::new(&graph, config),
        labels.clone(),
        DEFAULT_MAX_BATCH,
    );
    let cached = RequestHandler::with_cache(
        SharedQueryEngine::new(&graph, config),
        labels,
        DEFAULT_MAX_BATCH,
        capacity,
    );
    let frame = batch_frame(&pairs);

    // Warm both handlers once (untimed): the cached handler fills its
    // entries; the uncached one pays the same compute it will pay every
    // round anyway.
    let warm = uncached.handle_line(&frame).expect("batch answers");
    let warm_cached = cached.handle_line(&frame).expect("batch answers");
    assert_eq!(warm_cached.json, warm.json, "warm-up must already agree");

    // The churn loop: every round an update lands in the far cluster, then
    // the hot batch is re-asked.  Updates are applied to both handlers
    // outside the timed sections (the gate measures serving cost, not
    // update cost — update_churn covers that).
    let mut uncached_secs = 0.0f64;
    let mut cached_secs = 0.0f64;
    for round in 0..rounds {
        let update = churn_update_frame(clusters, round);
        for handler in [&uncached, &cached] {
            let response = handler.handle_line(&update).expect("update answers");
            assert!(!response.is_error, "{}", response.json);
        }
        let start = Instant::now();
        let expected = uncached.handle_line(&frame).expect("batch answers");
        uncached_secs += start.elapsed().as_secs_f64();
        assert!(!expected.is_error, "{}", expected.json);
        let start = Instant::now();
        let got = cached.handle_line(&frame).expect("batch answers");
        cached_secs += start.elapsed().as_secs_f64();
        assert_eq!(
            got.json, expected.json,
            "cached response diverged from uncached on round {round}"
        );
    }

    let stats = cached
        .cached_engine()
        .cache_stats()
        .expect("cache is enabled");
    assert!(
        stats.survived > 0,
        "disjoint rounds must re-stamp survivors: {stats:?}"
    );
    // Bloom false positives may kill a few entries per round (they only
    // cost a recompute); the survivors must still dominate.
    assert!(
        stats.survived > stats.killed,
        "survivors must dominate under disjoint churn: {stats:?}"
    );
    let lookups = stats.hits + stats.misses + stats.stale;
    let hit_rate = stats.hits as f64 / lookups.max(1) as f64;
    println!(
        "cache_churn: {rounds} disjoint rounds, {} survived, {} killed, \
         hit rate {:.1}% over {} lookups, byte-identical throughout",
        stats.survived,
        stats.killed,
        100.0 * hit_rate,
        lookups
    );

    let served = (rounds * pairs.len()) as f64;
    let report = ChurnReport {
        clusters: clusters as usize,
        hot_pairs: pairs.len(),
        samples,
        rounds,
        capacity,
        uncached_pairs_per_sec: served / uncached_secs,
        cached_pairs_per_sec: served / cached_secs,
        cache_ratio: uncached_secs / cached_secs,
        hit_rate,
        survived: stats.survived,
        killed: stats.killed,
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("artifact is writable");
    println!("cache_churn: {json}");
    println!("cache_churn: artifact written to {out_path}");

    // Acceptance floor: surviving the churn must beat recomputing it 3x.
    if report.cache_ratio < HARD_FLOOR {
        eprintln!(
            "cache_churn: FAIL: churn speedup {:.2}x is below the acceptance \
             floor of {HARD_FLOOR}x",
            report.cache_ratio
        );
        std::process::exit(1);
    }

    // Gate against the checked-in baseline.
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cache_churn: WARNING: no baseline at {baseline_path} ({e}); gate skipped");
            return;
        }
    };
    let baseline: ChurnReport =
        serde_json::from_str(&baseline_text).expect("baseline parses as ChurnReport");
    let floor = baseline.cache_ratio / 2.0;
    println!(
        "cache_churn: churn ratio {:.2}x (baseline {:.2}x -> floor {:.2}x), \
         uncached {:.0} pairs/sec, cached {:.0} pairs/sec",
        report.cache_ratio,
        baseline.cache_ratio,
        floor,
        report.uncached_pairs_per_sec,
        report.cached_pairs_per_sec
    );
    if report.cache_ratio < floor {
        eprintln!(
            "cache_churn: FAIL: churn cache ratio regressed more than 2x \
             (ratio {:.2} < floor {:.2})",
            report.cache_ratio, floor
        );
        std::process::exit(1);
    }
    println!("cache_churn: OK");
}
