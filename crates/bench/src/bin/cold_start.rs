//! `cold_start` — the CI gate for snapshot-backed boot.
//!
//! Measures how long it takes to get a query-ready engine from cold, down
//! both boot paths the server supports:
//!
//! * **text boot** — parse the text edge list, compact labels, validate
//!   every edge and compile the CSR (`usim serve GRAPH`);
//! * **snapshot boot** — read the checksummed `USIMCSR1` arrays and hand
//!   them straight to the engine (`usim serve --snapshot`), no per-edge
//!   work at all.
//!
//! The run writes a `BENCH_cold_start.json` artifact and exits non-zero
//! when either gate fails:
//!
//! 1. the **acceptance floor**: snapshot boot must be at least 5x faster
//!    than text boot (the whole point of the format), and
//! 2. the **regression gate**: the speedup must not fall below half the
//!    checked-in baseline (`crates/bench/baselines/cold_start.json`) —
//!    ratio-based like the other gates, so machine speed cancels out.
//!
//! It also asserts the correctness contract: both engines answer the same
//! pair batch bit-identically (a snapshot boot is a boot, not an
//! approximation).
//!
//! Environment:
//! * `USIM_BENCH_SCALE`    — R-MAT scale, `2^scale` vertices (default 13)
//! * `USIM_BENCH_EDGES`    — R-MAT edges before dedup (default 65536)
//! * `USIM_BENCH_REPS`     — boot repetitions, fastest wins (default 5)
//! * `USIM_BENCH_OUT`      — artifact path (default `BENCH_cold_start.json`)
//! * `USIM_BENCH_BASELINE` — baseline path (default
//!   `crates/bench/baselines/cold_start.json`)

use std::time::Instant;
use ugraph::io::{read_edge_list_file, write_edge_list_file, ReadOptions};
use ugraph::snapshot::{read_snapshot_file, write_snapshot_file};
use ugraph::CsrGraph;
use usim_bench::random_pairs;
use usim_core::{QueryEngine, SimRankConfig};
use usim_datasets::RmatGenerator;

/// The measurements the artifact records and the baseline pins.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ColdStartReport {
    /// Vertices of the benchmark graph.
    vertices: usize,
    /// Arcs of the benchmark graph.
    arcs: usize,
    /// Text-file size in bytes.
    text_bytes: u64,
    /// Snapshot-file size in bytes.
    snapshot_bytes: u64,
    /// Boot repetitions (fastest of each path is kept).
    reps: usize,
    /// Fastest parse-and-compile boot, seconds.
    text_boot_secs: f64,
    /// Fastest snapshot boot, seconds.
    snapshot_boot_secs: f64,
    /// `text_boot_secs / snapshot_boot_secs` — the gated number.
    speedup: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_usize("USIM_BENCH_SCALE", 13) as u32;
    let num_edges = env_usize("USIM_BENCH_EDGES", 1 << 16);
    let reps = env_usize("USIM_BENCH_REPS", 5).max(1);
    let out_path =
        std::env::var("USIM_BENCH_OUT").unwrap_or_else(|_| "BENCH_cold_start.json".to_string());
    let baseline_path = std::env::var("USIM_BENCH_BASELINE")
        .unwrap_or_else(|_| format!("{}/baselines/cold_start.json", env!("CARGO_MANIFEST_DIR")));

    // Stage both on-disk forms of the same graph.
    let graph = RmatGenerator {
        scale,
        num_edges,
        seed: 0xc01d,
        ..Default::default()
    }
    .generate();
    let dir = std::env::temp_dir().join(format!("usim_cold_start_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    let text_path = dir.join("graph.tsv");
    let snapshot_path = dir.join("graph.csr");
    write_edge_list_file(&graph, &text_path).expect("text graph writes");
    // Text loading compacts away isolated vertices; stage the snapshot from
    // the *parsed* graph so both boot paths land in the same vertex space —
    // exactly what `usim snapshot write GRAPH OUT` produces.
    let staged =
        read_edge_list_file(&text_path, &ReadOptions::default()).expect("staged graph parses");
    let csr = CsrGraph::from_uncertain(&staged.graph);
    write_snapshot_file(&csr, &staged.labels, &snapshot_path).expect("snapshot writes");
    let text_bytes = std::fs::metadata(&text_path).expect("text metadata").len();
    let snapshot_bytes = std::fs::metadata(&snapshot_path)
        .expect("snapshot metadata")
        .len();

    let config = SimRankConfig::default().with_samples(10).with_seed(42);
    let pairs = random_pairs(&staged.graph, 64, 0x5eed);

    // Text boot: parse + label-compact + validate + CSR-compile.
    let mut text_boot_secs = f64::INFINITY;
    let mut text_engine = None;
    for _ in 0..reps {
        let start = Instant::now();
        let parsed = read_edge_list_file(&text_path, &ReadOptions::default())
            .expect("staged text graph parses");
        let engine = QueryEngine::new(&parsed.graph, config);
        text_boot_secs = text_boot_secs.min(start.elapsed().as_secs_f64());
        text_engine = Some(engine);
    }
    let text_engine = text_engine.expect("at least one rep ran");

    // Snapshot boot: checksummed array read, no per-edge work.
    let mut snapshot_boot_secs = f64::INFINITY;
    let mut snapshot_engine = None;
    for _ in 0..reps {
        let start = Instant::now();
        let snapshot = read_snapshot_file(&snapshot_path).expect("staged snapshot reads");
        let engine = QueryEngine::from_csr(snapshot.graph, config);
        snapshot_boot_secs = snapshot_boot_secs.min(start.elapsed().as_secs_f64());
        snapshot_engine = Some(engine);
    }
    let snapshot_engine = snapshot_engine.expect("at least one rep ran");

    // Correctness contract: both boots serve the identical engine.
    let text_scores = text_engine
        .batch_similarities(&pairs)
        .expect("ids are in range");
    let snapshot_scores = snapshot_engine
        .batch_similarities(&pairs)
        .expect("ids are in range");
    assert_eq!(
        text_scores, snapshot_scores,
        "snapshot boot diverged from text boot"
    );
    println!("cold_start: snapshot boot == text boot (bit-identical scores)");
    let _ = std::fs::remove_dir_all(&dir);

    let report = ColdStartReport {
        vertices: staged.graph.num_vertices(),
        arcs: staged.graph.num_arcs(),
        text_bytes,
        snapshot_bytes,
        reps,
        text_boot_secs,
        snapshot_boot_secs,
        speedup: text_boot_secs / snapshot_boot_secs,
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("artifact is writable");
    println!("cold_start: {json}");
    println!("cold_start: artifact written to {out_path}");

    // Gate 1: the acceptance floor — snapshot boot must beat text parse by
    // at least 5x, on any machine (both paths scale with the same I/O and
    // CPU, so the ratio is machine-independent).
    const ACCEPTANCE_FLOOR: f64 = 5.0;
    println!(
        "cold_start: text boot {:.1} ms, snapshot boot {:.1} ms, speedup {:.1}x",
        report.text_boot_secs * 1e3,
        report.snapshot_boot_secs * 1e3,
        report.speedup
    );
    if report.speedup < ACCEPTANCE_FLOOR {
        eprintln!(
            "cold_start: FAIL: snapshot boot is only {:.1}x faster than text parse \
             (acceptance floor {ACCEPTANCE_FLOOR}x)",
            report.speedup
        );
        std::process::exit(1);
    }

    // Gate 2: regression versus the checked-in baseline.
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cold_start: WARNING: no baseline at {baseline_path} ({e}); gate skipped");
            return;
        }
    };
    let baseline: ColdStartReport =
        serde_json::from_str(&baseline_text).expect("baseline parses as ColdStartReport");
    let floor = baseline.speedup / 2.0;
    println!(
        "cold_start: speedup {:.1}x (baseline {:.1}x -> floor {:.1}x)",
        report.speedup, baseline.speedup, floor
    );
    if report.speedup < floor {
        eprintln!(
            "cold_start: FAIL: snapshot-boot speedup regressed more than 2x \
             (speedup {:.1}x < floor {:.1}x)",
            report.speedup, floor
        );
        std::process::exit(1);
    }
    println!("cold_start: OK");
}
