//! Fig. 11 reproduction: effect of the number of sampled walks `N` on the
//! execution time and relative error of SR-TS and SR-SP (on Condmat, `l = 1`).

use rwalk::transpr::TransPrOptions;
use usim_bench::{
    average_millis, dataset, fmt_ms, mean_relative_error, measure, pairs_from_env, random_pairs,
    scale_from_env, Table,
};
use usim_core::{
    BaselineEstimator, SimRankConfig, SimRankEstimator, SpeedupEstimator, TwoPhaseEstimator,
};

fn main() {
    let scale = scale_from_env();
    let num_pairs = pairs_from_env(10);
    let sample_sizes = [100usize, 250, 500, 1000, 2000];
    println!(
        "Fig. 11: effect of the number of samples N on SR-TS and SR-SP \
         (Condmat, l = 1, {num_pairs} pairs, scale = {scale:?})\n"
    );

    let graph = dataset("Condmat", scale);
    let pairs = random_pairs(&graph, num_pairs, 0xf11);
    let base_config = SimRankConfig::default()
        .with_phase_switch(1)
        .with_seed(0xf11);

    // Exact reference values from the Baseline (bounded); fall back to a very
    // large-sample SR-SP run if the graph is too dense for exact enumeration.
    let baseline =
        BaselineEstimator::new(&graph, base_config).with_transpr_options(TransPrOptions {
            max_walks: 200_000,
            prune_threshold: 1e-7,
            ..Default::default()
        });
    let mut reference = Vec::new();
    let mut reference_is_exact = true;
    for &(u, v) in &pairs {
        match baseline.try_similarity(u, v) {
            Ok(value) => reference.push(value),
            Err(_) => {
                reference_is_exact = false;
                break;
            }
        }
    }
    if !reference_is_exact {
        let mut fallback =
            SpeedupEstimator::new(&graph, base_config.with_samples(20_000).with_seed(0xdead));
        reference = pairs
            .iter()
            .map(|&(u, v)| fallback.similarity(u, v))
            .collect();
        println!("(Baseline infeasible on this graph; using a 20000-sample SR-SP reference)\n");
    }

    let mut table = Table::new(&[
        "N",
        "SR-TS time (ms)",
        "SR-SP time (ms)",
        "SR-TS rel. error",
        "SR-SP rel. error",
    ]);
    for &n_samples in &sample_sizes {
        let config = base_config.with_samples(n_samples);
        let mut two_phase = TwoPhaseEstimator::new(&graph, config);
        let (ts_estimates, ts_time) = measure(|| {
            pairs
                .iter()
                .map(|&(u, v)| two_phase.similarity(u, v))
                .collect::<Vec<f64>>()
        });
        let mut speedup = SpeedupEstimator::new(&graph, config);
        let (sp_estimates, sp_time) = measure(|| {
            pairs
                .iter()
                .map(|&(u, v)| speedup.similarity(u, v))
                .collect::<Vec<f64>>()
        });
        let ts_error: Vec<(f64, f64)> = ts_estimates
            .into_iter()
            .zip(reference.iter().copied())
            .collect();
        let sp_error: Vec<(f64, f64)> = sp_estimates
            .into_iter()
            .zip(reference.iter().copied())
            .collect();
        table.row(&[
            n_samples.to_string(),
            fmt_ms(average_millis(ts_time, pairs.len())),
            fmt_ms(average_millis(sp_time, pairs.len())),
            format!("{:.4}", mean_relative_error(&ts_error)),
            format!("{:.4}", mean_relative_error(&sp_error)),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: time grows sub-linearly with N, the relative error decreases \
         with N and flattens out below ~5% for N >= 1000."
    );
}
