//! `serve_throughput` — the CI perf-tracking gate for the query server.
//!
//! Measures the wire tax: the same pair batch is answered once directly on
//! a local [`QueryEngine`] and once through a full in-process
//! [`usim_server::Server`] round trip (TCP + line-delimited JSON + the
//! shared engine's read lock), with several client connections driving
//! `batch` frames concurrently.  The served path runs with **request
//! coalescing** on (window `USIM_BENCH_COALESCE_US`, cap = client count):
//! concurrent identical batches collapse into one engine dispatch through
//! the intra-batch-dedup path, which is exactly the deployment the
//! `--coalesce-window` serve flag enables.  The run writes a
//! `BENCH_serve_throughput.json` artifact and exits non-zero when either
//!
//! * the **serve ratio** — served throughput divided by same-run direct
//!   throughput — regresses more than 2x against the checked-in baseline, or
//! * the **p99 ratio** — client-observed p99 round-trip latency divided by
//!   the same-run direct per-batch time — regresses more than 2x against
//!   the baseline.
//!
//! Like `bench_smoke` and `update_churn`, both gates compare same-run
//! ratios, not absolute times, so they are machine-speed independent: the
//! ratios isolate protocol + transport + locking overhead from the cost of
//! the walks themselves.
//!
//! The run also asserts the serving correctness contract (every score
//! crossing the wire is bit-identical to the direct engine answer — floats
//! are serialised in shortest round-trip form) and the observability
//! contract (the server's latency histogram counted exactly one sample per
//! served frame, and the coalescer's flush counters add up to its batch
//! count).
//!
//! Environment:
//! * `USIM_BENCH_PAIRS`       — query pairs per client pass (default 192)
//! * `USIM_BENCH_SAMPLES`     — walk samples per query (default 20)
//! * `USIM_BENCH_CLIENTS`     — concurrent client connections (default 3)
//! * `USIM_BENCH_PASSES`      — batch passes per client (default 4)
//! * `USIM_BENCH_COALESCE_US` — coalescing window in µs (default 1500)
//! * `USIM_BENCH_OUT`         — artifact path (default `BENCH_serve_throughput.json`)
//! * `USIM_BENCH_BASELINE`    — baseline path (default
//!   `crates/bench/baselines/serve_throughput.json`)

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;
use ugraph::VertexId;
use usim_bench::random_pairs;
use usim_core::{QueryEngine, SharedQueryEngine, SimRankConfig};
use usim_datasets::RmatGenerator;
use usim_server::{CoalesceOptions, RequestHandler, Server, ServerOptions};

/// The measurements the artifact records and the baseline pins.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ServeReport {
    /// Query pairs per batch frame pass.
    pairs: usize,
    /// Walk samples per query.
    samples: usize,
    /// Server worker threads.
    workers: usize,
    /// Concurrent client connections.
    clients: usize,
    /// Batch passes per client.
    passes: usize,
    /// Coalescing window (µs) the served path ran with.
    coalesce_window_us: u64,
    /// Direct in-process batch throughput, pairs per second.
    direct_pairs_per_sec: f64,
    /// Throughput through the TCP + JSON server path, pairs per second.
    served_pairs_per_sec: f64,
    /// `served_pairs_per_sec / direct_pairs_per_sec` — the first gate.
    serve_ratio: f64,
    /// Client-observed round-trip latency percentiles, µs.
    p50_us: f64,
    /// 90th percentile, µs.
    p90_us: f64,
    /// 99th percentile, µs.
    p99_us: f64,
    /// `p99_us / (direct µs per batch pass)` — the second gate: how many
    /// direct-batch-times the slowest served round trips cost.
    p99_ratio: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Formats a pairs batch as one `batch` request frame in wire labels
/// (the R-MAT graph is compact, so labels == vertex ids).
fn batch_frame(pairs: &[(VertexId, VertexId)]) -> String {
    let mut frame = String::from(r#"{"type":"batch","pairs":["#);
    for (i, (u, v)) in pairs.iter().enumerate() {
        if i > 0 {
            frame.push(',');
        }
        frame.push_str(&format!("[{u},{v}]"));
    }
    frame.push_str("]}");
    frame
}

/// Extracts the `"scores":[…]` array of a batch response line.
fn parse_scores(line: &str) -> Vec<f64> {
    let start = line.find("\"scores\":[").expect("batch response") + "\"scores\":[".len();
    let end = start + line[start..].find(']').expect("closing bracket");
    line[start..end]
        .split(',')
        .map(|s| s.parse().expect("a JSON float"))
        .collect()
}

/// Extracts the first `"key":<digits>` value after `from` in a JSON line
/// (enough structure awareness for the stats assertions below).
fn extract_u64(line: &str, from: usize, key: &str) -> u64 {
    let pattern = format!("\"{key}\":");
    let start = from
        + line[from..]
            .find(&pattern)
            .unwrap_or_else(|| panic!("{key} in stats frame: {line}"))
        + pattern.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("{key} is numeric in: {line}"))
}

/// The exclusive-upper-rank percentile of a sorted latency sample, µs.
fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let pairs_count = env_usize("USIM_BENCH_PAIRS", 192);
    let samples = env_usize("USIM_BENCH_SAMPLES", 20);
    let clients = env_usize("USIM_BENCH_CLIENTS", 3).max(1);
    let passes = env_usize("USIM_BENCH_PASSES", 4);
    let coalesce_window_us = env_usize("USIM_BENCH_COALESCE_US", 1500) as u64;
    let out_path = std::env::var("USIM_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_serve_throughput.json".to_string());
    let baseline_path = std::env::var("USIM_BENCH_BASELINE").unwrap_or_else(|_| {
        format!(
            "{}/baselines/serve_throughput.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });

    let graph = RmatGenerator::small(0xd13a).generate();
    let pairs = random_pairs(&graph, pairs_count, 0x5eed);
    let config = SimRankConfig::default().with_samples(samples).with_seed(42);
    // Every client needs a live worker for coalescing to collect across
    // connections — a queued connection cannot join a batch.
    let workers = rayon::current_num_threads().max(clients).max(2);

    // Direct throughput: the same batch on a local engine (warm arenas).
    let direct = QueryEngine::new(&graph, config);
    let warm = direct.batch_similarities(&pairs).expect("ids in range");
    std::hint::black_box(warm.len());
    let start = Instant::now();
    let mut direct_scores = Vec::new();
    for _ in 0..passes {
        direct_scores = direct.batch_similarities(&pairs).expect("ids in range");
    }
    let direct_secs = start.elapsed().as_secs_f64();
    let direct_pairs_per_sec = (passes * pairs.len()) as f64 / direct_secs;
    let direct_batch_us = 1e6 * direct_secs / passes.max(1) as f64;

    // Served throughput: the identical batch through the full TCP + JSON
    // path, `clients` concurrent connections each driving `passes` frames,
    // coalesced across connections exactly like `usim serve
    // --coalesce-window` runs in production.
    let handler = RequestHandler::new(
        SharedQueryEngine::new(&graph, config),
        (0..graph.num_vertices() as u64).collect(),
        usize::MAX >> 1,
    )
    .with_coalescing(CoalesceOptions {
        window: std::time::Duration::from_micros(coalesce_window_us),
        cap: clients,
    });
    let handle = Server::bind(
        "127.0.0.1:0",
        handler,
        ServerOptions {
            workers,
            queue_depth: clients,
            max_connections: None,
        },
    )
    .expect("bind loopback")
    .spawn();
    let frame = batch_frame(&pairs);

    let start = Instant::now();
    let mut joins = Vec::new();
    for _ in 0..clients {
        let frame = frame.clone();
        let addr = handle.addr();
        let expected = direct_scores.clone();
        joins.push(std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.set_nodelay(true).expect("nodelay");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut latencies_us = Vec::with_capacity(passes);
            for _ in 0..passes {
                let sent = Instant::now();
                writeln!(conn, "{frame}").expect("write frame");
                let mut line = String::new();
                reader.read_line(&mut line).expect("read response");
                latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
                // Correctness contract: the wire is bit-exact.
                assert_eq!(
                    parse_scores(&line),
                    expected,
                    "served scores diverged from the direct engine"
                );
            }
            latencies_us
        }));
    }
    let mut latencies_us = Vec::with_capacity(clients * passes);
    for join in joins {
        latencies_us.extend(join.join().expect("client thread"));
    }
    let served_secs = start.elapsed().as_secs_f64();
    let served_pairs = clients * passes * pairs.len();
    let served_pairs_per_sec = served_pairs as f64 / served_secs;

    // Observability contract: every served frame recorded one latency
    // sample (the clients have all disconnected, so the count is exact),
    // and the coalescer's flush counters add up.
    let mut probe = TcpStream::connect(handle.addr()).expect("stats probe");
    probe.set_nodelay(true).expect("nodelay");
    let mut probe_reader = BufReader::new(probe.try_clone().expect("clone"));
    writeln!(probe, r#"{{"type":"stats"}}"#).expect("write stats");
    let mut stats_line = String::new();
    probe_reader.read_line(&mut stats_line).expect("read stats");
    drop((probe, probe_reader));
    let latency_at = stats_line.find("\"latency\":").expect("latency section");
    let recorded = extract_u64(&stats_line, latency_at, "count");
    assert_eq!(
        recorded,
        (clients * passes) as u64,
        "histogram count != served frames: {stats_line}"
    );
    let coalescer_at = stats_line
        .find("\"coalescer\":")
        .expect("coalescer section");
    let coalesced_requests = extract_u64(&stats_line, coalescer_at, "requests");
    let batches = extract_u64(&stats_line, coalescer_at, "batches");
    let window_flushes = extract_u64(&stats_line, coalescer_at, "window_flushes");
    let cap_flushes = extract_u64(&stats_line, coalescer_at, "cap_flushes");
    assert_eq!(
        coalesced_requests,
        (clients * passes) as u64,
        "every batch frame went through the coalescer: {stats_line}"
    );
    assert_eq!(
        window_flushes + cap_flushes,
        batches,
        "flush counters add up: {stats_line}"
    );

    let stats = handle.shutdown().expect("clean shutdown");
    assert_eq!(stats.errors, 0, "no error frames in a clean run");
    println!(
        "serve_throughput: served == direct engine (bit-identical scores, \
         {} frames over {} connections; {} coalesced batches, mean occupancy {:.2}, \
         {} window / {} cap flushes)",
        stats.frames,
        stats.connections,
        batches,
        coalesced_requests as f64 / batches.max(1) as f64,
        window_flushes,
        cap_flushes,
    );

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99_us = percentile_us(&latencies_us, 0.99);
    let report = ServeReport {
        pairs: pairs.len(),
        samples,
        workers,
        clients,
        passes,
        coalesce_window_us,
        direct_pairs_per_sec,
        served_pairs_per_sec,
        serve_ratio: served_pairs_per_sec / direct_pairs_per_sec,
        p50_us: percentile_us(&latencies_us, 0.50),
        p90_us: percentile_us(&latencies_us, 0.90),
        p99_us,
        p99_ratio: p99_us / direct_batch_us,
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("artifact is writable");
    println!("serve_throughput: {json}");
    println!("serve_throughput: artifact written to {out_path}");

    // Gate against the checked-in baseline.
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "serve_throughput: WARNING: no baseline at {baseline_path} ({e}); gate skipped"
            );
            return;
        }
    };
    let baseline: ServeReport =
        serde_json::from_str(&baseline_text).expect("baseline parses as ServeReport");
    let floor = baseline.serve_ratio / 2.0;
    let p99_ceiling = baseline.p99_ratio * 2.0;
    println!(
        "serve_throughput: serve ratio {:.3} (baseline {:.3} -> floor {:.3}), \
         direct {:.0} pairs/sec, served {:.0} pairs/sec",
        report.serve_ratio,
        baseline.serve_ratio,
        floor,
        report.direct_pairs_per_sec,
        report.served_pairs_per_sec
    );
    println!(
        "serve_throughput: p50/p90/p99 = {:.0}/{:.0}/{:.0} µs, p99 ratio {:.3} \
         (baseline {:.3} -> ceiling {:.3})",
        report.p50_us,
        report.p90_us,
        report.p99_us,
        report.p99_ratio,
        baseline.p99_ratio,
        p99_ceiling
    );
    let mut failed = false;
    if report.serve_ratio < floor {
        eprintln!(
            "serve_throughput: FAIL: served throughput regressed more than 2x \
             versus the direct engine (ratio {:.3} < floor {:.3})",
            report.serve_ratio, floor
        );
        failed = true;
    }
    if report.p99_ratio > p99_ceiling {
        eprintln!(
            "serve_throughput: FAIL: p99 round-trip latency regressed more than 2x \
             versus the baseline (ratio {:.3} > ceiling {:.3})",
            report.p99_ratio, p99_ceiling
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("serve_throughput: OK");
}
