//! `serve_throughput` — the CI perf-tracking gate for the query server.
//!
//! Measures the wire tax: the same pair batch is answered once directly on
//! a local [`QueryEngine`] and once through a full in-process
//! [`usim_server::Server`] round trip (TCP + line-delimited JSON + the
//! shared engine's read lock), with several client connections driving
//! `batch` frames concurrently.  The run writes a
//! `BENCH_serve_throughput.json` artifact and exits non-zero when the
//! **serve ratio** — served throughput divided by same-run direct
//! throughput — regresses more than 2x against the checked-in baseline.
//!
//! Like `bench_smoke` and `update_churn`, the gate compares a same-run
//! ratio, not absolute times, so it is machine-speed independent: the
//! ratio isolates protocol + transport + locking overhead from the cost of
//! the walks themselves.
//!
//! The run also asserts the serving correctness contract: every score
//! crossing the wire is bit-identical to the direct engine answer (floats
//! are serialised in shortest round-trip form).
//!
//! Environment:
//! * `USIM_BENCH_PAIRS`    — query pairs per client pass (default 192)
//! * `USIM_BENCH_SAMPLES`  — walk samples per query (default 20)
//! * `USIM_BENCH_CLIENTS`  — concurrent client connections (default 3)
//! * `USIM_BENCH_PASSES`   — batch passes per client (default 4)
//! * `USIM_BENCH_OUT`      — artifact path (default `BENCH_serve_throughput.json`)
//! * `USIM_BENCH_BASELINE` — baseline path (default
//!   `crates/bench/baselines/serve_throughput.json`)

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;
use ugraph::VertexId;
use usim_bench::random_pairs;
use usim_core::{QueryEngine, SharedQueryEngine, SimRankConfig};
use usim_datasets::RmatGenerator;
use usim_server::{RequestHandler, Server, ServerOptions};

/// The measurements the artifact records and the baseline pins.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ServeReport {
    /// Query pairs per batch frame pass.
    pairs: usize,
    /// Walk samples per query.
    samples: usize,
    /// Server worker threads.
    workers: usize,
    /// Concurrent client connections.
    clients: usize,
    /// Batch passes per client.
    passes: usize,
    /// Direct in-process batch throughput, pairs per second.
    direct_pairs_per_sec: f64,
    /// Throughput through the TCP + JSON server path, pairs per second.
    served_pairs_per_sec: f64,
    /// `served_pairs_per_sec / direct_pairs_per_sec` — the gated number.
    serve_ratio: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Formats a pairs batch as one `batch` request frame in wire labels
/// (the R-MAT graph is compact, so labels == vertex ids).
fn batch_frame(pairs: &[(VertexId, VertexId)]) -> String {
    let mut frame = String::from(r#"{"type":"batch","pairs":["#);
    for (i, (u, v)) in pairs.iter().enumerate() {
        if i > 0 {
            frame.push(',');
        }
        frame.push_str(&format!("[{u},{v}]"));
    }
    frame.push_str("]}");
    frame
}

/// Extracts the `"scores":[…]` array of a batch response line.
fn parse_scores(line: &str) -> Vec<f64> {
    let start = line.find("\"scores\":[").expect("batch response") + "\"scores\":[".len();
    let end = start + line[start..].find(']').expect("closing bracket");
    line[start..end]
        .split(',')
        .map(|s| s.parse().expect("a JSON float"))
        .collect()
}

fn main() {
    let pairs_count = env_usize("USIM_BENCH_PAIRS", 192);
    let samples = env_usize("USIM_BENCH_SAMPLES", 20);
    let clients = env_usize("USIM_BENCH_CLIENTS", 3);
    let passes = env_usize("USIM_BENCH_PASSES", 4);
    let out_path = std::env::var("USIM_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_serve_throughput.json".to_string());
    let baseline_path = std::env::var("USIM_BENCH_BASELINE").unwrap_or_else(|_| {
        format!(
            "{}/baselines/serve_throughput.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });

    let graph = RmatGenerator::small(0xd13a).generate();
    let pairs = random_pairs(&graph, pairs_count, 0x5eed);
    let config = SimRankConfig::default().with_samples(samples).with_seed(42);
    let workers = rayon::current_num_threads().max(2);

    // Direct throughput: the same batch on a local engine (warm arenas).
    let direct = QueryEngine::new(&graph, config);
    let warm = direct.batch_similarities(&pairs).expect("ids in range");
    std::hint::black_box(warm.len());
    let start = Instant::now();
    let mut direct_scores = Vec::new();
    for _ in 0..passes {
        direct_scores = direct.batch_similarities(&pairs).expect("ids in range");
    }
    let direct_secs = start.elapsed().as_secs_f64();
    let direct_pairs_per_sec = (passes * pairs.len()) as f64 / direct_secs;

    // Served throughput: the identical batch through the full TCP + JSON
    // path, `clients` concurrent connections each driving `passes` frames.
    let handler = RequestHandler::new(
        SharedQueryEngine::new(&graph, config),
        (0..graph.num_vertices() as u64).collect(),
        usize::MAX >> 1,
    );
    let handle = Server::bind(
        "127.0.0.1:0",
        handler,
        ServerOptions {
            workers,
            queue_depth: clients.max(1),
            max_connections: None,
        },
    )
    .expect("bind loopback")
    .spawn();
    let frame = batch_frame(&pairs);

    let start = Instant::now();
    let mut joins = Vec::new();
    for _ in 0..clients {
        let frame = frame.clone();
        let addr = handle.addr();
        let expected = direct_scores.clone();
        joins.push(std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            for _ in 0..passes {
                writeln!(conn, "{frame}").expect("write frame");
                let mut line = String::new();
                reader.read_line(&mut line).expect("read response");
                // Correctness contract: the wire is bit-exact.
                assert_eq!(
                    parse_scores(&line),
                    expected,
                    "served scores diverged from the direct engine"
                );
            }
        }));
    }
    for join in joins {
        join.join().expect("client thread");
    }
    let served_secs = start.elapsed().as_secs_f64();
    let served_pairs = clients * passes * pairs.len();
    let served_pairs_per_sec = served_pairs as f64 / served_secs;
    let stats = handle.shutdown().expect("clean shutdown");
    assert_eq!(stats.errors, 0, "no error frames in a clean run");
    println!(
        "serve_throughput: served == direct engine (bit-identical scores, \
         {} frames over {} connections)",
        stats.frames, stats.connections
    );

    let report = ServeReport {
        pairs: pairs.len(),
        samples,
        workers,
        clients,
        passes,
        direct_pairs_per_sec,
        served_pairs_per_sec,
        serve_ratio: served_pairs_per_sec / direct_pairs_per_sec,
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("artifact is writable");
    println!("serve_throughput: {json}");
    println!("serve_throughput: artifact written to {out_path}");

    // Gate against the checked-in baseline.
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "serve_throughput: WARNING: no baseline at {baseline_path} ({e}); gate skipped"
            );
            return;
        }
    };
    let baseline: ServeReport =
        serde_json::from_str(&baseline_text).expect("baseline parses as ServeReport");
    let floor = baseline.serve_ratio / 2.0;
    println!(
        "serve_throughput: serve ratio {:.3} (baseline {:.3} -> floor {:.3}), \
         direct {:.0} pairs/sec, served {:.0} pairs/sec",
        report.serve_ratio,
        baseline.serve_ratio,
        floor,
        report.direct_pairs_per_sec,
        report.served_pairs_per_sec
    );
    if report.serve_ratio < floor {
        eprintln!(
            "serve_throughput: FAIL: served throughput regressed more than 2x \
             versus the direct engine (ratio {:.3} < floor {:.3})",
            report.serve_ratio, floor
        );
        std::process::exit(1);
    }
    println!("serve_throughput: OK");
}
