//! `bench_smoke` — the CI perf-tracking gate for the batch query engine.
//!
//! Runs a reduced-size version of the `batch_throughput` benchmark (1k pair
//! queries over a small R-MAT graph, sequential `profile` loop versus
//! thread-sharded `batch_profile`), writes the measurements to a
//! `BENCH_batch_smoke.json` artifact, and exits non-zero when the batch
//! speedup regresses more than 2x against the checked-in baseline.
//!
//! The gate compares the **speedup ratio** (batch throughput divided by
//! same-run sequential throughput), not absolute times: CI runners differ
//! wildly in clock speed, but the ratio only depends on the engine's
//! sharding and allocation behaviour.  Because the ratio is bounded by the
//! worker count, the baseline expectation is first clamped to the runner's
//! thread count.
//!
//! Environment:
//! * `USIM_BENCH_PAIRS`   — number of query pairs (default 1024)
//! * `USIM_BENCH_SAMPLES` — walk samples per query (default 20)
//! * `USIM_BENCH_OUT`     — artifact path (default `BENCH_batch_smoke.json`)
//! * `USIM_BENCH_BASELINE`— baseline path (default
//!   `crates/bench/baselines/batch_smoke.json`)

use std::time::Instant;
use usim_bench::random_pairs;
use usim_core::{QueryEngine, SimRankConfig};
use usim_datasets::RmatGenerator;

/// The measurements the artifact records and the baseline pins.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct SmokeReport {
    /// Number of query pairs measured.
    pairs: usize,
    /// Walk samples per query.
    samples: usize,
    /// Walk horizon `n`.
    horizon: usize,
    /// Worker threads available to the batch path.
    threads: usize,
    /// Sequential `profile` loop throughput, pairs per second.
    sequential_pairs_per_sec: f64,
    /// `batch_profile` throughput, pairs per second.
    batch_pairs_per_sec: f64,
    /// `batch_pairs_per_sec / sequential_pairs_per_sec` — the gated number.
    speedup_ratio: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let pairs_count = env_usize("USIM_BENCH_PAIRS", 1024);
    let samples = env_usize("USIM_BENCH_SAMPLES", 20);
    let out_path =
        std::env::var("USIM_BENCH_OUT").unwrap_or_else(|_| "BENCH_batch_smoke.json".to_string());
    let baseline_path = std::env::var("USIM_BENCH_BASELINE")
        .unwrap_or_else(|_| format!("{}/baselines/batch_smoke.json", env!("CARGO_MANIFEST_DIR")));

    let graph = RmatGenerator::small(0xba7c).generate();
    let pairs = random_pairs(&graph, pairs_count, 0x7007);
    let config = SimRankConfig::default().with_samples(samples).with_seed(42);
    let engine = QueryEngine::new(&graph, config);
    let threads = rayon::current_num_threads();

    // Warm-up: touch both paths once so page faults and lazy init are paid.
    let warm_sequential: f64 = pairs[..pairs.len().min(64)]
        .iter()
        .map(|&(u, v)| engine.profile(u, v).score())
        .sum();
    let warm_batch = engine
        .batch_profile(&pairs[..pairs.len().min(64)])
        .expect("ids are in range")
        .len();
    std::hint::black_box((warm_sequential, warm_batch));

    let sequential_secs = best_of(3, || {
        pairs
            .iter()
            .map(|&(u, v)| engine.profile(u, v).score())
            .sum::<f64>()
    });
    let batch_secs = best_of(3, || {
        engine.batch_profile(&pairs).expect("ids are in range")
    });

    let report = SmokeReport {
        pairs: pairs.len(),
        samples,
        horizon: config.horizon,
        threads,
        sequential_pairs_per_sec: pairs.len() as f64 / sequential_secs,
        batch_pairs_per_sec: pairs.len() as f64 / batch_secs,
        speedup_ratio: sequential_secs / batch_secs,
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("artifact is writable");
    println!("bench_smoke: {json}");
    println!("bench_smoke: artifact written to {out_path}");

    // Gate against the checked-in baseline.
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_smoke: WARNING: no baseline at {baseline_path} ({e}); gate skipped");
            return;
        }
    };
    let baseline: SmokeReport =
        serde_json::from_str(&baseline_text).expect("baseline parses as SmokeReport");
    // The achievable ratio is capped by the worker count, so clamp the
    // baseline expectation before applying the 2x tolerance.
    let expected = baseline.speedup_ratio.min(threads as f64);
    let floor = expected / 2.0;
    println!(
        "bench_smoke: speedup ratio {:.2} (baseline {:.2}, {} threads -> floor {:.2})",
        report.speedup_ratio, baseline.speedup_ratio, threads, floor
    );
    if report.speedup_ratio < floor {
        eprintln!(
            "bench_smoke: FAIL: batch throughput regressed more than 2x \
             (ratio {:.2} < floor {:.2})",
            report.speedup_ratio, floor
        );
        std::process::exit(1);
    }
    println!("bench_smoke: OK");
}
