//! `obs_overhead` — the CI gate bounding the cost of observability.
//!
//! Drives the identical request workload (a mix of `similarity` and
//! `batch` frames) through two in-process [`usim_server::RequestHandler`]s
//! over the same graph and config: one bare, one with the full
//! observability stack on — stage tracing at sample rate 1.0 (every
//! request traced, the worst case), the slow-query log, and the
//! process-wide walk metrics.  No TCP, no threads: the measured loop is
//! `handle_line_into` alone, so the ratio isolates exactly what the
//! instrumentation adds to the serving hot path.
//!
//! Rounds alternate bare/traced (best-of-rounds on both sides) so CPU
//! warm-up and frequency drift cancel instead of biasing one mode; the
//! global walk-metrics flag is toggled per round so the bare side never
//! pays for counter flushes.
//!
//! The gate is a **hard floor**, not a baseline ratio: traced throughput
//! must stay at ≥ 0.9× bare throughput.  The checked-in baseline records
//! the measured ratio for tracking, but a run below 0.9 fails regardless
//! of what the baseline says — observability must never cost more than
//! 10%.
//!
//! The run also asserts two correctness contracts:
//!
//! * **bit-identity** — every response byte out of the traced handler
//!   equals the bare handler's (tracing only reads clocks; it must never
//!   perturb answers), and
//! * **stage-sum coherence** — for every slow-log entry, the per-stage
//!   timings sum to at most the entry's end-to-end total (stages are
//!   disjoint slices of the request's wall time).
//!
//! Environment:
//! * `USIM_BENCH_PAIRS`    — query pairs per batch frame (default 96)
//! * `USIM_BENCH_SAMPLES`  — walk samples per query (default 20)
//! * `USIM_BENCH_POINT`    — similarity frames per pass (default 64)
//! * `USIM_BENCH_PASSES`   — passes per round (default 3)
//! * `USIM_BENCH_ROUNDS`   — alternating rounds (default 3)
//! * `USIM_BENCH_OUT`      — artifact path (default `BENCH_obs_overhead.json`)
//! * `USIM_BENCH_BASELINE` — baseline path (default
//!   `crates/bench/baselines/obs_overhead.json`)

use bytes::BytesMut;
use std::time::Instant;
use usim_bench::random_pairs;
use usim_core::{SharedQueryEngine, SimRankConfig};
use usim_datasets::RmatGenerator;
use usim_obs::walk_metrics;
use usim_server::RequestHandler;

/// The measurements the artifact records and the baseline pins.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ObsReport {
    /// Query pairs per batch frame.
    pairs: usize,
    /// Walk samples per query.
    samples: usize,
    /// Similarity frames per pass.
    point_frames: usize,
    /// Passes per round.
    passes: usize,
    /// Alternating bare/traced rounds.
    rounds: usize,
    /// Best bare-handler throughput, frames per second.
    bare_frames_per_sec: f64,
    /// Best traced-handler throughput, frames per second.
    traced_frames_per_sec: f64,
    /// `traced / bare` — the gated ratio (hard floor 0.9).
    overhead_ratio: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One pass of the workload; returns (elapsed seconds, concatenated output).
fn run_pass(handler: &RequestHandler, frames: &[String]) -> (f64, BytesMut) {
    let mut out = BytesMut::with_capacity(frames.len() * 64);
    let start = Instant::now();
    for frame in frames {
        handler.handle_line_into(frame, &mut out);
    }
    (start.elapsed().as_secs_f64(), out)
}

fn main() {
    let pairs_count = env_usize("USIM_BENCH_PAIRS", 96);
    let samples = env_usize("USIM_BENCH_SAMPLES", 20);
    let point_frames = env_usize("USIM_BENCH_POINT", 64);
    let passes = env_usize("USIM_BENCH_PASSES", 3).max(1);
    let rounds = env_usize("USIM_BENCH_ROUNDS", 3).max(1);
    let out_path =
        std::env::var("USIM_BENCH_OUT").unwrap_or_else(|_| "BENCH_obs_overhead.json".to_string());
    let baseline_path = std::env::var("USIM_BENCH_BASELINE")
        .unwrap_or_else(|_| format!("{}/baselines/obs_overhead.json", env!("CARGO_MANIFEST_DIR")));

    let graph = RmatGenerator::small(0xd13a).generate();
    let pairs = random_pairs(&graph, pairs_count, 0x5eed);
    let config = SimRankConfig::default().with_samples(samples).with_seed(42);
    let labels: Vec<u64> = (0..graph.num_vertices() as u64).collect();

    // The workload: point queries interleaved with one batch frame per
    // `point_frames / 8` points — the mix a serving deployment sees.
    let mut frames = Vec::new();
    let mut batch = String::from(r#"{"type":"batch","pairs":["#);
    for (i, (u, v)) in pairs.iter().enumerate() {
        if i > 0 {
            batch.push(',');
        }
        batch.push_str(&format!("[{u},{v}]"));
    }
    batch.push_str("]}");
    for (i, (u, v)) in pairs.iter().cycle().take(point_frames).enumerate() {
        frames.push(format!(
            r#"{{"type":"similarity","source":{u},"target":{v}}}"#
        ));
        if i % 8 == 7 {
            frames.push(batch.clone());
        }
    }

    let bare = RequestHandler::new(
        SharedQueryEngine::new(&graph, config),
        labels.clone(),
        usize::MAX >> 1,
    );
    // Sample rate 1.0: every request traced — the worst case the gate
    // bounds.  Walk metrics are enabled only while a traced round runs.
    let traced = RequestHandler::new(
        SharedQueryEngine::new(&graph, config),
        labels,
        usize::MAX >> 1,
    )
    .with_tracing(1.0, 32);

    // Bit-identity: the traced handler serves byte-for-byte the bare
    // handler's responses (warm pass, also warms both engines' arenas).
    walk_metrics().set_enabled(true);
    let (_, traced_out) = run_pass(&traced, &frames);
    walk_metrics().set_enabled(false);
    let (_, bare_out) = run_pass(&bare, &frames);
    assert_eq!(
        traced_out, bare_out,
        "tracing must never change response bytes"
    );

    let mut bare_best = 0.0f64;
    let mut traced_best = 0.0f64;
    for _ in 0..rounds {
        walk_metrics().set_enabled(false);
        let mut bare_secs = f64::INFINITY;
        for _ in 0..passes {
            let (secs, out) = run_pass(&bare, &frames);
            std::hint::black_box(out.len());
            bare_secs = bare_secs.min(secs);
        }
        bare_best = bare_best.max(frames.len() as f64 / bare_secs);

        walk_metrics().set_enabled(true);
        let mut traced_secs = f64::INFINITY;
        for _ in 0..passes {
            let (secs, out) = run_pass(&traced, &frames);
            std::hint::black_box(out.len());
            traced_secs = traced_secs.min(secs);
        }
        traced_best = traced_best.max(frames.len() as f64 / traced_secs);
    }
    walk_metrics().set_enabled(false);

    // Stage-sum coherence on everything the slow log kept: disjoint stage
    // slices can never sum past the request's own wall-clock total.
    let tracer = traced.tracer().expect("traced handler has a tracer");
    let slow = tracer.slow_log().snapshot();
    assert!(!slow.is_empty(), "rate-1.0 tracing must feed the slow log");
    for entry in &slow {
        let stage_sum: u64 = entry.stages_us.iter().sum();
        assert!(
            stage_sum <= entry.total_us,
            "stage sum {}us exceeds end-to-end total {}us (trace {})",
            stage_sum,
            entry.total_us,
            entry.trace_id
        );
    }
    println!(
        "obs_overhead: responses bit-identical; {} slow-log entries all \
         satisfy sum(stages) <= total",
        slow.len()
    );

    let report = ObsReport {
        pairs: pairs.len(),
        samples,
        point_frames,
        passes,
        rounds,
        bare_frames_per_sec: bare_best,
        traced_frames_per_sec: traced_best,
        overhead_ratio: traced_best / bare_best,
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("artifact is writable");
    println!("obs_overhead: {json}");
    println!("obs_overhead: artifact written to {out_path}");

    match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            let baseline: ObsReport =
                serde_json::from_str(&text).expect("baseline parses as ObsReport");
            println!(
                "obs_overhead: ratio {:.3} (baseline recorded {:.3}), bare {:.0} \
                 frames/sec, traced {:.0} frames/sec",
                report.overhead_ratio,
                baseline.overhead_ratio,
                report.bare_frames_per_sec,
                report.traced_frames_per_sec
            );
        }
        Err(e) => {
            println!(
                "obs_overhead: no baseline at {baseline_path} ({e}); ratio {:.3}",
                report.overhead_ratio
            );
        }
    }

    // The hard floor: full-fat observability may cost at most 10%.
    const FLOOR: f64 = 0.9;
    if report.overhead_ratio < FLOOR {
        eprintln!(
            "obs_overhead: FAIL: tracing + metrics cost more than 10% of \
             throughput (ratio {:.3} < floor {FLOOR})",
            report.overhead_ratio
        );
        std::process::exit(1);
    }
    println!("obs_overhead: OK");
}
