//! `csr_vs_alias` — the CI gate for the alias sampler backend.
//!
//! Times the per-step transition draw of both walk backends on the same
//! compiled CSR graph:
//!
//! * **legacy** — the lazily-instantiated arena sampler
//!   (`rwalk::CsrSampler` + `WalkArena`): one uniform draw per possible arc
//!   on first visit, memoized within the walk;
//! * **alias** — the precomputed Walker alias tables
//!   (`rwalk::AliasSampler` over the tables `CsrGraph` builds): exactly one
//!   `f64` draw and one 16-byte slot read per step, degree-independent.
//!
//! The run writes a `BENCH_alias_speedup.json` artifact and exits non-zero
//! when either gate fails:
//!
//! 1. the **acceptance floor**: alias walks must be at least 2x faster than
//!    the arena sampler (the whole point of precomputing the tables), and
//! 2. the **regression gate**: the speedup must not fall below half the
//!    checked-in baseline (`crates/bench/baselines/alias_speedup.json`) —
//!    ratio-based like the other gates, so machine speed cancels out.
//!
//! Environment:
//! * `USIM_BENCH_SCALE`    — R-MAT scale, `2^scale` vertices (default 12)
//! * `USIM_BENCH_EDGES`    — R-MAT edges before dedup (default 65536)
//! * `USIM_BENCH_WALKS`    — walks per timed pass (default 100000)
//! * `USIM_BENCH_LEN`      — steps per walk (default 8)
//! * `USIM_BENCH_REPS`     — timed passes, fastest wins (default 5)
//! * `USIM_BENCH_OUT`      — artifact path (default `BENCH_alias_speedup.json`)
//! * `USIM_BENCH_BASELINE` — baseline path (default
//!   `crates/bench/baselines/alias_speedup.json`)

use rand::rngs::StdRng;
use rand::SeedableRng;
use rwalk::{AliasSampler, CsrSampler, WalkArena, DEAD};
use std::time::Instant;
use ugraph::{CsrGraph, VertexId};
use usim_datasets::RmatGenerator;

/// The measurements the artifact records and the baseline pins.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct AliasSpeedupReport {
    /// Vertices of the benchmark graph.
    vertices: usize,
    /// Arcs of the benchmark graph.
    arcs: usize,
    /// Walks sampled per timed pass.
    walks: usize,
    /// Steps per walk.
    walk_len: usize,
    /// Timed passes (fastest of each backend is kept).
    reps: usize,
    /// Fastest legacy (arena sampler) pass, seconds.
    legacy_secs: f64,
    /// Fastest alias-table pass, seconds.
    alias_secs: f64,
    /// `legacy_secs / alias_secs` — the gated number.
    speedup: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_usize("USIM_BENCH_SCALE", 12) as u32;
    let num_edges = env_usize("USIM_BENCH_EDGES", 1 << 16);
    let walks = env_usize("USIM_BENCH_WALKS", 100_000).max(1);
    let walk_len = env_usize("USIM_BENCH_LEN", 8).max(1);
    let reps = env_usize("USIM_BENCH_REPS", 5).max(1);
    let out_path =
        std::env::var("USIM_BENCH_OUT").unwrap_or_else(|_| "BENCH_alias_speedup.json".to_string());
    let baseline_path = std::env::var("USIM_BENCH_BASELINE").unwrap_or_else(|_| {
        format!(
            "{}/baselines/alias_speedup.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });

    let graph = RmatGenerator {
        scale,
        num_edges,
        seed: 0xa11a5,
        ..Default::default()
    }
    .generate();
    let mut csr = CsrGraph::from_uncertain(&graph);
    csr.build_alias_tables();
    let num_vertices = csr.num_vertices() as VertexId;
    // Walks follow the reverse adjacency, like the SimRank engines do.
    let view = csr.reverse();
    let alias_view = csr.reverse_alias().expect("tables were just built");

    // Both backends walk the same start schedule from identically seeded
    // RNGs; what differs is purely the per-step draw.
    let starts: Vec<VertexId> = (0..walks).map(|i| (i as VertexId) % num_vertices).collect();
    let mut positions: Vec<VertexId> = Vec::with_capacity(walk_len + 1);

    let legacy = CsrSampler::new(view);
    let mut arena = WalkArena::new();
    let mut legacy_secs = f64::INFINITY;
    let mut legacy_live_steps = 0u64;
    for _ in 0..reps {
        let mut rng = StdRng::seed_from_u64(0x1e9acc);
        let mut live = 0u64;
        let start = Instant::now();
        for &v in &starts {
            legacy.sample_walk_into(&mut arena, v, walk_len, &mut rng, &mut positions);
            live += positions.iter().skip(1).filter(|&&p| p != DEAD).count() as u64;
        }
        legacy_secs = legacy_secs.min(start.elapsed().as_secs_f64());
        legacy_live_steps = live;
    }

    let alias = AliasSampler::new(alias_view);
    let mut alias_secs = f64::INFINITY;
    let mut alias_live_steps = 0u64;
    for _ in 0..reps {
        let mut rng = StdRng::seed_from_u64(0x1e9acc);
        let mut live = 0u64;
        let start = Instant::now();
        for &v in &starts {
            alias.sample_walk_into(v, walk_len, &mut rng, &mut positions);
            live += positions.iter().skip(1).filter(|&&p| p != DEAD).count() as u64;
        }
        alias_secs = alias_secs.min(start.elapsed().as_secs_f64());
        alias_live_steps = live;
    }

    // Sanity contract: the two backends sample different distributions over
    // whole walks, but their one-step survival behaviour agrees in
    // expectation — wildly different live-step counts mean a broken table.
    let total_steps = (walks * walk_len) as f64;
    let legacy_rate = legacy_live_steps as f64 / total_steps;
    let alias_rate = alias_live_steps as f64 / total_steps;
    assert!(
        (legacy_rate - alias_rate).abs() < 0.05,
        "live-step rates diverged: legacy {legacy_rate:.3} vs alias {alias_rate:.3}"
    );
    println!(
        "csr_vs_alias: live-step rates agree (legacy {legacy_rate:.3}, alias {alias_rate:.3})"
    );

    let report = AliasSpeedupReport {
        vertices: csr.num_vertices(),
        arcs: csr.num_arcs(),
        walks,
        walk_len,
        reps,
        legacy_secs,
        alias_secs,
        speedup: legacy_secs / alias_secs,
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("artifact is writable");
    println!("csr_vs_alias: {json}");
    println!("csr_vs_alias: artifact written to {out_path}");

    // Gate 1: the acceptance floor — one draw per step must beat
    // degree-many draws per step by at least 2x, on any machine.
    const ACCEPTANCE_FLOOR: f64 = 2.0;
    println!(
        "csr_vs_alias: legacy {:.1} ms, alias {:.1} ms, speedup {:.1}x",
        report.legacy_secs * 1e3,
        report.alias_secs * 1e3,
        report.speedup
    );
    if report.speedup < ACCEPTANCE_FLOOR {
        eprintln!(
            "csr_vs_alias: FAIL: alias walks are only {:.2}x faster than the arena \
             sampler (acceptance floor {ACCEPTANCE_FLOOR}x)",
            report.speedup
        );
        std::process::exit(1);
    }

    // Gate 2: regression versus the checked-in baseline.
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("csr_vs_alias: WARNING: no baseline at {baseline_path} ({e}); gate skipped");
            return;
        }
    };
    let baseline: AliasSpeedupReport =
        serde_json::from_str(&baseline_text).expect("baseline parses as AliasSpeedupReport");
    let floor = baseline.speedup / 2.0;
    println!(
        "csr_vs_alias: speedup {:.1}x (baseline {:.1}x -> floor {:.1}x)",
        report.speedup, baseline.speedup, floor
    );
    if report.speedup < floor {
        eprintln!(
            "csr_vs_alias: FAIL: alias speedup regressed more than 2x \
             (speedup {:.1}x < floor {:.1}x)",
            report.speedup, floor
        );
        std::process::exit(1);
    }
    println!("csr_vs_alias: OK");
}
