//! Fig. 15 reproduction: execution time of the entity-resolution algorithms
//! as the number of records grows.
//!
//! The paper varies the record count from 2000 to 5000 and reports roughly
//! linear growth for DISTINCT, EIF, SimER and SimDER, with the SimRank-based
//! algorithms 20–30% slower than the baselines.  At the default CI scale this
//! binary sweeps 200–800 records (set `USIM_SCALE=paper` for the published
//! range).

use usim_bench::{measure, scale_from_env, Scale, Table};
use usim_core::SimRankConfig;
use usim_datasets::ErGenerator;
use usim_er::{ErAlgorithm, ErAlgorithmKind};

fn main() {
    let scale = scale_from_env();
    let record_counts: Vec<usize> = match scale {
        Scale::Ci => vec![150, 300, 450, 600],
        Scale::Paper => vec![2000, 3000, 4000, 5000],
    };
    println!("Fig. 15: entity-resolution execution time vs record size (scale = {scale:?})\n");

    let simrank = SimRankConfig::default().with_samples(200).with_seed(0xf15);
    let algorithms = vec![
        ErAlgorithm::new(ErAlgorithmKind::Distinct),
        ErAlgorithm::new(ErAlgorithmKind::Eif),
        ErAlgorithm::new(ErAlgorithmKind::SimEr).with_simrank_config(simrank),
        ErAlgorithm::new(ErAlgorithmKind::SimDer).with_simrank_config(simrank),
    ];

    let mut table = Table::new(&[
        "records",
        "DISTINCT (s)",
        "EIF (s)",
        "SimER (s)",
        "SimDER (s)",
    ]);
    for &records in &record_counts {
        let dataset = ErGenerator::default()
            .with_total_records(records)
            .generate();
        let mut row = vec![dataset.num_records().to_string()];
        for algorithm in &algorithms {
            let (_, time) = measure(|| {
                for group in 0..dataset.groups.len() {
                    let group_records = dataset.records_of_group(group);
                    let _ = algorithm.cluster_group(&dataset.graph, &group_records);
                }
            });
            row.push(format!("{:.2}", time.as_secs_f64()));
        }
        table.row(&row);
        println!("finished {records} records");
    }
    println!();
    table.print();
    println!(
        "\nExpected shape: all four grow roughly linearly with the record count; the \
         SimRank-based algorithms pay a modest constant factor over EIF / DISTINCT."
    );
}
