//! `update_churn` — the CI perf-tracking gate for the dynamic-graph path.
//!
//! Simulates the streaming update-and-query workload the `DeltaOverlay`
//! subsystem exists for: a fixed pair batch is answered on a pristine
//! engine, then rounds of valid arc updates (deletes, re-inserts,
//! re-weights) are applied through `QueryEngine::apply_updates` with the
//! batch re-answered after every round.  The run writes a
//! `BENCH_update_churn.json` artifact and exits non-zero when the
//! **churn ratio** — query throughput under churn divided by same-run
//! pristine query throughput — regresses more than 2x against the
//! checked-in baseline.
//!
//! Like `bench_smoke`, the gate compares a same-run ratio, not absolute
//! times, so it is machine-speed independent: the ratio isolates the cost
//! of reading through the overlay (patched-row hash lookups, compactions)
//! from the cost of the walks themselves.
//!
//! The run also asserts the dynamic engine's correctness contract: after
//! all rounds, scores must be bit-identical to a fresh engine built on the
//! mutated graph snapshot.
//!
//! Environment:
//! * `USIM_BENCH_PAIRS`    — number of query pairs (default 256)
//! * `USIM_BENCH_SAMPLES`  — walk samples per query (default 20)
//! * `USIM_BENCH_ROUNDS`   — update rounds (default 8)
//! * `USIM_BENCH_UPDATES`  — updates per round (default 128)
//! * `USIM_BENCH_OUT`      — artifact path (default `BENCH_update_churn.json`)
//! * `USIM_BENCH_BASELINE` — baseline path (default
//!   `crates/bench/baselines/update_churn.json`)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ugraph::{GraphUpdate, VertexId};
use usim_bench::random_pairs;
use usim_core::{QueryEngine, SimRankConfig};
use usim_datasets::RmatGenerator;

/// The measurements the artifact records and the baseline pins.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ChurnReport {
    /// Number of query pairs in the batch.
    pairs: usize,
    /// Walk samples per query.
    samples: usize,
    /// Walk horizon `n`.
    horizon: usize,
    /// Worker threads available to the batch path.
    threads: usize,
    /// Update rounds applied.
    rounds: usize,
    /// Updates per round.
    updates_per_round: usize,
    /// Compactions triggered while applying the rounds.
    compactions: usize,
    /// `apply_updates` throughput, update operations per second.
    updates_per_sec: f64,
    /// Batch query throughput on the pristine engine, pairs per second.
    pristine_pairs_per_sec: f64,
    /// Batch query throughput interleaved with update rounds, pairs/sec.
    churn_pairs_per_sec: f64,
    /// `churn_pairs_per_sec / pristine_pairs_per_sec` — the gated number.
    churn_ratio: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Builds `rounds` rounds of `per_round` updates that are always valid
/// against the evolving graph: deletes of live arcs, re-inserts of
/// previously deleted arcs, and re-weights of live arcs, round-robin.
fn build_rounds(
    graph: &ugraph::UncertainGraph,
    rounds: usize,
    per_round: usize,
    seed: u64,
) -> Vec<Vec<GraphUpdate>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<(VertexId, VertexId)> = graph.arcs().map(|a| (a.source, a.target)).collect();
    let mut dead: Vec<(VertexId, VertexId)> = Vec::new();
    let mut out = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let mut batch = Vec::with_capacity(per_round);
        for step in 0..per_round {
            match (round + step) % 3 {
                // Delete a random live arc (keep the graph from draining).
                0 if live.len() > per_round => {
                    let idx = rng.gen_range(0..live.len());
                    let (source, target) = live.swap_remove(idx);
                    dead.push((source, target));
                    batch.push(GraphUpdate::DeleteArc { source, target });
                }
                // Re-insert a previously deleted arc with a fresh weight.
                1 if !dead.is_empty() => {
                    let idx = rng.gen_range(0..dead.len());
                    let (source, target) = dead.swap_remove(idx);
                    live.push((source, target));
                    batch.push(GraphUpdate::InsertArc {
                        source,
                        target,
                        probability: rng.gen_range(0.05..1.0),
                    });
                }
                // Re-weight a random live arc.
                _ => {
                    let (source, target) = live[rng.gen_range(0..live.len())];
                    batch.push(GraphUpdate::SetProbability {
                        source,
                        target,
                        probability: rng.gen_range(0.05..1.0),
                    });
                }
            }
        }
        out.push(batch);
    }
    out
}

fn main() {
    let pairs_count = env_usize("USIM_BENCH_PAIRS", 256);
    let samples = env_usize("USIM_BENCH_SAMPLES", 20);
    let rounds_count = env_usize("USIM_BENCH_ROUNDS", 8);
    let per_round = env_usize("USIM_BENCH_UPDATES", 128);
    let out_path =
        std::env::var("USIM_BENCH_OUT").unwrap_or_else(|_| "BENCH_update_churn.json".to_string());
    let baseline_path = std::env::var("USIM_BENCH_BASELINE")
        .unwrap_or_else(|_| format!("{}/baselines/update_churn.json", env!("CARGO_MANIFEST_DIR")));

    let graph = RmatGenerator::small(0xd13a).generate();
    let pairs = random_pairs(&graph, pairs_count, 0x5eed);
    let config = SimRankConfig::default().with_samples(samples).with_seed(42);
    let threads = rayon::current_num_threads();
    let rounds = build_rounds(&graph, rounds_count, per_round, 0xc0de);
    let total_updates: usize = rounds.iter().map(Vec::len).sum();

    // Pristine throughput: same engine type, no updates ever applied.
    let pristine = QueryEngine::new(&graph, config);
    let warm = pristine
        .batch_similarities(&pairs)
        .expect("ids are in range");
    std::hint::black_box(warm.len());
    let start = Instant::now();
    let baseline_scores = pristine
        .batch_similarities(&pairs)
        .expect("ids are in range");
    let pristine_secs = start.elapsed().as_secs_f64();
    std::hint::black_box(baseline_scores.len());

    // Churn: interleave apply_updates and the same batch, one live engine.
    // The policy is tightened so the run crosses the compaction threshold
    // several times — the gate then covers the full overlay lifecycle
    // (patch, read-through, fold back into a fresh CSR).
    let mut engine = QueryEngine::new(&graph, config);
    engine.set_compaction_policy(ugraph::CompactionPolicy {
        min_ops: (total_updates / 4).max(1),
        ops_fraction: 0.0,
    });
    let mut update_secs = 0.0f64;
    let mut query_secs = 0.0f64;
    let mut compactions = 0usize;
    for round in &rounds {
        let start = Instant::now();
        let summary = engine
            .apply_updates(round)
            .expect("generated rounds are valid");
        update_secs += start.elapsed().as_secs_f64();
        compactions += usize::from(summary.compacted);
        let start = Instant::now();
        let scores = engine.batch_similarities(&pairs).expect("ids are in range");
        query_secs += start.elapsed().as_secs_f64();
        std::hint::black_box(scores.len());
    }

    // Correctness contract: the dynamic engine must be bit-identical to a
    // fresh engine built on the mutated graph.
    let final_scores = engine.batch_similarities(&pairs).expect("ids are in range");
    let fresh = QueryEngine::new(&engine.snapshot(), config);
    let fresh_scores = fresh.batch_similarities(&pairs).expect("ids are in range");
    assert_eq!(
        final_scores, fresh_scores,
        "dynamic engine diverged from a from-scratch rebuild"
    );
    println!("update_churn: dynamic == rebuilt engine (bit-identical scores)");

    let churn_queries = rounds.len() * pairs.len();
    let report = ChurnReport {
        pairs: pairs.len(),
        samples,
        horizon: config.horizon,
        threads,
        rounds: rounds.len(),
        updates_per_round: per_round,
        compactions,
        updates_per_sec: total_updates as f64 / update_secs,
        pristine_pairs_per_sec: pairs.len() as f64 / pristine_secs,
        churn_pairs_per_sec: churn_queries as f64 / query_secs,
        churn_ratio: (churn_queries as f64 / query_secs) / (pairs.len() as f64 / pristine_secs),
    };
    let json = serde_json::to_string(&report).expect("report serialises");
    std::fs::write(&out_path, &json).expect("artifact is writable");
    println!("update_churn: {json}");
    println!("update_churn: artifact written to {out_path}");

    // Gate against the checked-in baseline.
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("update_churn: WARNING: no baseline at {baseline_path} ({e}); gate skipped");
            return;
        }
    };
    let baseline: ChurnReport =
        serde_json::from_str(&baseline_text).expect("baseline parses as ChurnReport");
    let floor = baseline.churn_ratio / 2.0;
    println!(
        "update_churn: churn ratio {:.3} (baseline {:.3} -> floor {:.3}), \
         {:.0} updates/sec, {} compactions",
        report.churn_ratio, baseline.churn_ratio, floor, report.updates_per_sec, compactions
    );
    if report.churn_ratio < floor {
        eprintln!(
            "update_churn: FAIL: query throughput under churn regressed more than 2x \
             (ratio {:.3} < floor {:.3})",
            report.churn_ratio, floor
        );
        std::process::exit(1);
    }
    println!("update_churn: OK");
}
