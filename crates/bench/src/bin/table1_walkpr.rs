//! Table I reproduction: the worked `WalkPr` example.
//!
//! The paper walks through `WalkPr` on the uncertain graph of Fig. 1(a) for
//! the walk `v1 v3 v1 v3 v4 v2 v3 v4 v2`, tabulating `O_W(v)`, `c_W(v)`,
//! `O_G(v) \ O_W(v)`, the `r(n, x)` table and `α_W(v)` per vertex.  The arc
//! endpoints of Fig. 1(a) are not fully specified in the text, so the graph
//! below is reverse-engineered from the rows of Table I (see EXPERIMENTS.md);
//! with it, every α value matches the paper except α(v1), whose published
//! value (0.64) is inconsistent with the paper's own Eq. (11) — we obtain
//! P(v1→v3) = 0.8, and flag the discrepancy in the output.

use rwalk::walk::Walk;
use rwalk::walkpr::{alpha, walk_probability};
use ugraph::UncertainGraphBuilder;
use usim_bench::Table;

fn main() {
    // Graph consistent with the deducible rows of Table I:
    //   O_G(v1) = {v3: 0.8}
    //   O_G(v2) = {v1: 0.8, v3: 0.9}
    //   O_G(v3) = {v1: 0.5, v4: 0.6}
    //   O_G(v4) = {v2: 0.7, v5: 0.6}
    //   plus one arc out of v5 to reach the 8 arcs of Fig. 1(a).
    let g = UncertainGraphBuilder::new(5)
        .arc(0, 2, 0.8)
        .arc(1, 0, 0.8)
        .arc(1, 2, 0.9)
        .arc(2, 0, 0.5)
        .arc(2, 3, 0.6)
        .arc(3, 1, 0.7)
        .arc(3, 4, 0.6)
        .arc(4, 2, 0.8)
        .build()
        .expect("hand-built graph is valid");

    // The walk of Table I, 0-indexed: v1 v3 v1 v3 v4 v2 v3 v4 v2.
    let walk = Walk::from_vertices(vec![0, 2, 0, 2, 3, 1, 2, 3, 1]);
    println!("Table I: WalkPr on the walk v1 v3 v1 v3 v4 v2 v3 v4 v2\n");

    let mut table = Table::new(&["vertex", "O_W(v)", "c_W(v)", "alpha_W(v)", "paper"]);
    let paper_alpha = [("v1", 0.64), ("v2", 0.54), ("v3", 0.0375), ("v4", 0.385)];
    let mut product = 1.0;
    for (v, stats) in walk.vertex_stats() {
        if stats.out_count == 0 {
            continue;
        }
        let a = alpha(&g, v, &stats.out_neighbors, stats.out_count);
        product *= a;
        let label = format!("v{}", v + 1);
        let paper = paper_alpha
            .iter()
            .find(|(name, _)| *name == label)
            .map(|(_, value)| format!("{value}"))
            .unwrap_or_else(|| "-".to_string());
        let neighbors = stats
            .out_neighbors
            .iter()
            .map(|w| format!("v{}", w + 1))
            .collect::<Vec<_>>()
            .join(",");
        table.row(&[
            label,
            format!("{{{neighbors}}}"),
            stats.out_count.to_string(),
            format!("{a:.4}"),
            paper,
        ]);
    }
    table.print();

    let direct = walk_probability(&g, &walk);
    println!("\nWalk probability (product of alphas): {product:.7}");
    println!("Walk probability (WalkPr):            {direct:.7}");
    println!("Paper's reported product:             0.0049896");
    println!(
        "\nNote: the paper's alpha(v1) = 0.64 is inconsistent with its own Eq. (11) \
         (it equals P(v1->v3)^2 rather than P(v1->v3)); every other row matches."
    );
    assert!((product - direct).abs() < 1e-12);
}
