//! Fig. 13 reproduction: top-20 similar protein pairs found with (USIM) and
//! without (DSIM) taking uncertainty into account.
//!
//! The paper ranks protein pairs of PPI1 by uncertain SimRank (USIM) and by
//! classic SimRank on the skeleton (DSIM) and checks how many of the top 20
//! pairs belong to the same MIPS protein complex (16/20 for USIM vs 6/20 for
//! DSIM).  Our PPI stand-in plants the complexes itself, so the same check is
//! run against the planted ground truth.

use ugraph::VertexId;
use usim_bench::Table;
use usim_core::DeterministicSimRank;
use usim_core::{top_k::top_k_pairs, SimRankConfig, SimRankEstimator, SpeedupEstimator};
use usim_datasets::PpiGenerator;

/// Candidate pairs: vertices that share at least one possible in-neighbor
/// (any pair without a shared neighbor has SimRank close to zero at n = 1 and
/// cannot reach the top of the ranking).
fn candidate_pairs(graph: &ugraph::UncertainGraph) -> Vec<(VertexId, VertexId)> {
    let mut pairs = std::collections::HashSet::new();
    for w in graph.vertices() {
        let out = graph.out_neighbors(w);
        for (i, &a) in out.iter().enumerate() {
            for &b in &out[i + 1..] {
                pairs.insert((a.min(b), a.max(b)));
            }
        }
    }
    pairs.into_iter().collect()
}

struct DsimWrapper(DeterministicSimRank);

impl SimRankEstimator for DsimWrapper {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.0.similarity(u, v)
    }
    fn name(&self) -> &'static str {
        "DSIM"
    }
}

fn main() {
    let generator = PpiGenerator {
        num_proteins: 500,
        num_complexes: 60,
        complex_size: (3, 6),
        noise_edges: 700,
        seed: 0xf13,
        ..Default::default()
    };
    let dataset = generator.generate();
    let graph = &dataset.graph;
    println!(
        "Fig. 13: top-20 similar protein pairs (planted-complex PPI stand-in, {} proteins, {} complexes)\n",
        graph.num_vertices(),
        dataset.complexes.len()
    );
    let candidates = candidate_pairs(graph);
    println!(
        "{} candidate pairs share at least one possible neighbor",
        candidates.len()
    );

    let config = SimRankConfig::default().with_samples(400).with_seed(0xf13);
    let mut usim = SpeedupEstimator::new(graph, config);
    let top_usim = top_k_pairs(&mut usim, candidates.iter().copied(), 20);

    let mut dsim = DsimWrapper(DeterministicSimRank::new(
        graph.skeleton(),
        config.decay,
        config.horizon,
    ));
    let top_dsim = top_k_pairs(&mut dsim, candidates.iter().copied(), 20);

    let mut table = Table::new(&[
        "rank",
        "USIM pair",
        "same complex?",
        "DSIM pair",
        "same complex?",
    ]);
    let mut usim_hits = 0usize;
    let mut dsim_hits = 0usize;
    for rank in 0..20 {
        let (u_pair, u_hit) = match top_usim.get(rank) {
            Some(scored) => {
                let hit = dataset.same_complex(scored.pair.0, scored.pair.1);
                (format!("({}, {})", scored.pair.0, scored.pair.1), hit)
            }
            None => ("-".to_string(), false),
        };
        let (d_pair, d_hit) = match top_dsim.get(rank) {
            Some(scored) => {
                let hit = dataset.same_complex(scored.pair.0, scored.pair.1);
                (format!("({}, {})", scored.pair.0, scored.pair.1), hit)
            }
            None => ("-".to_string(), false),
        };
        usim_hits += usize::from(u_hit);
        dsim_hits += usize::from(d_hit);
        table.row(&[
            (rank + 1).to_string(),
            u_pair,
            if u_hit { "yes" } else { "no" }.to_string(),
            d_pair,
            if d_hit { "yes" } else { "no" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nPairs within the same planted complex: USIM {usim_hits}/20, DSIM {dsim_hits}/20 \
         (paper: 16/20 vs 6/20 against MIPS complexes)."
    );
}
