//! Fig. 8 reproduction: convergence of the SimRank similarity with the
//! number of iterations `n`.
//!
//! For random vertex pairs of PPI1, PPI2, Net and Condmat, the binary
//! computes the full meeting-probability profile up to `n = 10` and reports
//! the average and maximum `s⁽ⁿ⁾` for every `n`.  The paper computes the
//! profiles with the Baseline algorithm; on the denser datasets the exact
//! enumeration to depth 10 is infeasible, so the SR-SP estimator (exact phase
//! `l = 2`, `N = 1000`) is used there — the quantity being plotted (the
//! truncated SimRank as a function of `n`) is the same.

use usim_bench::{dataset, fmt3, pairs_from_env, random_pairs, scale_from_env, Table};
use usim_core::{SimRankConfig, SpeedupEstimator};

fn main() {
    let scale = scale_from_env();
    let num_pairs = pairs_from_env(100);
    let max_horizon = 10;
    println!("Fig. 8: effect of the number of iterations n on the SimRank similarity\n");

    let mut average_table = Table::new(&["n", "PPI1", "PPI2", "Net", "Condmat"]);
    let mut maximum_table = Table::new(&["n", "PPI1", "PPI2", "Net", "Condmat"]);
    let mut averages: Vec<Vec<f64>> = Vec::new();
    let mut maxima: Vec<Vec<f64>> = Vec::new();

    for name in ["PPI1", "PPI2", "Net", "Condmat"] {
        let graph = dataset(name, scale);
        let config = SimRankConfig::default()
            .with_horizon(max_horizon)
            .with_phase_switch(2)
            .with_samples(1000)
            .with_seed(0xf18);
        let mut estimator = SpeedupEstimator::new(&graph, config);
        let pairs = random_pairs(&graph, num_pairs, 0xc0171e46);
        let mut per_horizon_average = vec![0.0; max_horizon];
        let mut per_horizon_maximum = vec![0.0f64; max_horizon];
        for &(u, v) in &pairs {
            let profile = estimator.profile(u, v);
            for n in 1..=max_horizon {
                let score = profile.score_at_horizon(n);
                per_horizon_average[n - 1] += score;
                per_horizon_maximum[n - 1] = per_horizon_maximum[n - 1].max(score);
            }
        }
        for value in &mut per_horizon_average {
            *value /= pairs.len() as f64;
        }
        averages.push(per_horizon_average);
        maxima.push(per_horizon_maximum);
        println!("computed {name} over {} pairs", pairs.len());
    }

    for n in 1..=max_horizon {
        average_table.row(&[
            n.to_string(),
            fmt3(averages[0][n - 1]),
            fmt3(averages[1][n - 1]),
            fmt3(averages[2][n - 1]),
            fmt3(averages[3][n - 1]),
        ]);
        maximum_table.row(&[
            n.to_string(),
            fmt3(maxima[0][n - 1]),
            fmt3(maxima[1][n - 1]),
            fmt3(maxima[2][n - 1]),
            fmt3(maxima[3][n - 1]),
        ]);
    }
    println!("\n(a) Average SimRank similarity vs n:");
    average_table.print();
    println!("\n(b) Maximum SimRank similarity vs n:");
    maximum_table.print();
    println!("\nThe similarities should stabilise after about 5 iterations (Theorem 2).");
}
