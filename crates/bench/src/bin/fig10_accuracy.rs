//! Fig. 10 reproduction: relative error of Sampling, SR-TS and SR-SP
//! (with `l = 1, 2, 3`) against the Baseline.
//!
//! The relative error is `|s − s*| / s*` where `s*` is the Baseline value,
//! averaged over random vertex pairs.  Datasets on which the Baseline's walk
//! budget is exceeded are skipped (the paper's ground truth has the same
//! practical limitation, which is why its accuracy figure uses the Baseline
//! values as reference rather than the true limit).

use rwalk::transpr::TransPrOptions;
use usim_bench::{
    dataset, mean_relative_error, pairs_from_env, random_pairs, scale_from_env, Table,
};
use usim_core::{
    BaselineEstimator, SamplingEstimator, SimRankConfig, SimRankEstimator, SpeedupEstimator,
    TwoPhaseEstimator,
};

fn main() {
    let scale = scale_from_env();
    let num_pairs = pairs_from_env(10);
    println!(
        "Fig. 10: average relative error vs the Baseline over {num_pairs} pairs (scale = {scale:?})\n"
    );

    let mut table = Table::new(&["Algorithm", "PPI2", "Condmat", "PPI3", "DBLP"]);
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Sampling".to_string()],
        vec!["SR-TS(l=1)".to_string()],
        vec!["SR-TS(l=2)".to_string()],
        vec!["SR-TS(l=3)".to_string()],
        vec!["SR-SP(l=1)".to_string()],
        vec!["SR-SP(l=2)".to_string()],
        vec!["SR-SP(l=3)".to_string()],
    ];

    for name in ["PPI2", "Condmat", "PPI3", "DBLP"] {
        let graph = dataset(name, scale);
        let pairs = random_pairs(&graph, num_pairs, 0xf10);
        let config = SimRankConfig::default().with_seed(0xf10);
        let baseline =
            BaselineEstimator::new(&graph, config).with_transpr_options(TransPrOptions {
                max_walks: 200_000,
                prune_threshold: 1e-7,
                ..Default::default()
            });
        // Exact reference values; skip the dataset if infeasible.
        let mut exact = Vec::new();
        let mut feasible = true;
        for &(u, v) in &pairs {
            match baseline.try_similarity(u, v) {
                Ok(value) => exact.push(value),
                Err(_) => {
                    feasible = false;
                    break;
                }
            }
        }
        println!(
            "{name}: {} vertices, {} arcs, baseline {}",
            graph.num_vertices(),
            graph.num_arcs(),
            if feasible {
                "ok"
            } else {
                "infeasible (skipped)"
            }
        );
        if !feasible {
            for row in rows.iter_mut() {
                row.push("n/a".to_string());
            }
            continue;
        }

        let record = |estimates: Vec<f64>, row: usize, rows: &mut Vec<Vec<String>>| {
            let paired: Vec<(f64, f64)> =
                estimates.into_iter().zip(exact.iter().copied()).collect();
            rows[row].push(format!("{:.4}", mean_relative_error(&paired)));
        };

        let mut sampling = SamplingEstimator::new(&graph, config);
        let estimates: Vec<f64> = pairs
            .iter()
            .map(|&(u, v)| sampling.similarity(u, v))
            .collect();
        record(estimates, 0, &mut rows);

        for (offset, l) in (1..=3).enumerate() {
            let mut two_phase = TwoPhaseEstimator::new(&graph, config.with_phase_switch(l));
            let estimates: Vec<f64> = pairs
                .iter()
                .map(|&(u, v)| two_phase.similarity(u, v))
                .collect();
            record(estimates, 1 + offset, &mut rows);
        }
        for (offset, l) in (1..=3).enumerate() {
            let mut speedup = SpeedupEstimator::new(&graph, config.with_phase_switch(l));
            let estimates: Vec<f64> = pairs
                .iter()
                .map(|&(u, v)| speedup.similarity(u, v))
                .collect();
            record(estimates, 4 + offset, &mut rows);
        }
    }

    for row in rows {
        table.row(&row);
    }
    println!();
    table.print();
    println!(
        "\nExpected shape: Sampling around 10% relative error, SR-TS / SR-SP around 1% \
         (an order of magnitude lower), errors shrinking as l grows (Corollary 1)."
    );
}
