//! Shared infrastructure of the experiment harness.
//!
//! Every table and figure of the paper's evaluation (Section VII) has a
//! corresponding binary in `src/bin/` that regenerates it; the helpers here
//! keep those binaries short: dataset construction at a configurable scale,
//! random vertex-pair selection, wall-clock measurement, relative-error
//! computation against the Baseline, and fixed-width table printing.
//!
//! All binaries run at a laptop-friendly "CI" scale by default; set the
//! environment variable `USIM_SCALE=paper` to use the published dataset
//! sizes (slow) and `USIM_PAIRS` to override the number of random query
//! pairs (the paper averages over 1000).

#![warn(missing_docs)]
#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use ugraph::{UncertainGraph, VertexId};
use usim_datasets::registry::{ci_registry, find_spec, paper_registry, DatasetSpec};

/// Experiment scale: the laptop-friendly default or the paper's sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down datasets and pair counts (the default).
    Ci,
    /// The sizes published in Table II (slow).
    Paper,
}

/// Reads the scale from the `USIM_SCALE` environment variable.
pub fn scale_from_env() -> Scale {
    match std::env::var("USIM_SCALE").as_deref() {
        Ok("paper") | Ok("PAPER") => Scale::Paper,
        _ => Scale::Ci,
    }
}

/// Number of random query pairs per configuration: `USIM_PAIRS` or the given
/// default.
pub fn pairs_from_env(default: usize) -> usize {
    std::env::var("USIM_PAIRS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The dataset registry for a scale.
pub fn registry(scale: Scale) -> Vec<DatasetSpec> {
    match scale {
        Scale::Ci => ci_registry(),
        Scale::Paper => paper_registry(),
    }
}

/// Generates a dataset by name at the given scale.
///
/// # Panics
///
/// Panics if the name is not in the registry.
pub fn dataset(name: &str, scale: Scale) -> UncertainGraph {
    let specs = registry(scale);
    let spec = find_spec(&specs, name).unwrap_or_else(|| {
        panic!("unknown dataset {name}; known: PPI1, PPI2, PPI3, Condmat, Net, DBLP")
    });
    spec.generate()
}

/// Selects `count` random vertex pairs (distinct endpoints, both with at
/// least one in-arc so SimRank has something to work with).
pub fn random_pairs(graph: &UncertainGraph, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| graph.in_degree(v) > 0)
        .collect();
    assert!(
        candidates.len() >= 2,
        "graph has fewer than two non-isolated vertices"
    );
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let u = candidates[rng.gen_range(0..candidates.len())];
        let v = candidates[rng.gen_range(0..candidates.len())];
        if u != v {
            pairs.push((u, v));
        }
    }
    pairs
}

/// Measures the wall-clock time of a closure.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Average wall-clock time per item of a per-pair workload.
pub fn average_millis(total: Duration, items: usize) -> f64 {
    if items == 0 {
        0.0
    } else {
        total.as_secs_f64() * 1000.0 / items as f64
    }
}

/// Relative error `|estimate − exact| / exact`, treating near-zero exact
/// values as "no information" (returns `None`).
pub fn relative_error(estimate: f64, exact: f64) -> Option<f64> {
    if exact.abs() < 1e-9 {
        None
    } else {
        Some((estimate - exact).abs() / exact.abs())
    }
}

/// Mean of the defined relative errors of a set of (estimate, exact) pairs.
pub fn mean_relative_error(pairs: &[(f64, f64)]) -> f64 {
    let errors: Vec<f64> = pairs
        .iter()
        .filter_map(|&(estimate, exact)| relative_error(estimate, exact))
        .collect();
    if errors.is_empty() {
        0.0
    } else {
        errors.iter().sum::<f64>() / errors.len() as f64
    }
}

/// Simple fixed-width table printer used by every experiment binary.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let format_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, width)| format!("{cell:>width$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to standard output.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with three decimal places (the precision used in the
/// paper's tables).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a duration in milliseconds with two decimals.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_and_pairs_env_defaults() {
        // Without the env vars set, the defaults apply.
        std::env::remove_var("USIM_SCALE");
        std::env::remove_var("USIM_PAIRS");
        assert_eq!(scale_from_env(), Scale::Ci);
        assert_eq!(pairs_from_env(42), 42);
    }

    #[test]
    fn datasets_are_available_at_ci_scale() {
        let g = dataset("Net", Scale::Ci);
        assert!(g.num_vertices() > 100);
        assert!(g.num_arcs() > 100);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = dataset("nope", Scale::Ci);
    }

    #[test]
    fn random_pairs_are_valid() {
        let g = dataset("Net", Scale::Ci);
        let pairs = random_pairs(&g, 50, 7);
        assert_eq!(pairs.len(), 50);
        for (u, v) in pairs {
            assert_ne!(u, v);
            assert!(g.in_degree(u) > 0);
            assert!(g.in_degree(v) > 0);
        }
    }

    #[test]
    fn relative_error_handles_zero_exact() {
        assert_eq!(relative_error(0.5, 0.0), None);
        assert!((relative_error(0.55, 0.5).unwrap() - 0.1).abs() < 1e-12);
        let mre = mean_relative_error(&[(0.55, 0.5), (0.9, 1.0), (0.3, 0.0)]);
        assert!((mre - 0.1).abs() < 1e-12);
    }

    #[test]
    fn measurement_and_formatting() {
        let (value, duration) = measure(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(average_millis(duration, 1) >= 0.0);
        assert_eq!(average_millis(Duration::from_secs(1), 0), 0.0);
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt_ms(1.005), "1.00");
    }

    #[test]
    fn table_rendering() {
        let mut table = Table::new(&["algo", "time"]);
        table.row(&["Baseline".to_string(), "1.00".to_string()]);
        table.row(&["SR-SP".to_string(), "0.10".to_string()]);
        let rendered = table.render();
        assert!(rendered.contains("Baseline"));
        assert!(rendered.contains("SR-SP"));
        assert_eq!(rendered.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut table = Table::new(&["a", "b"]);
        table.row(&["only one".to_string()]);
    }
}
