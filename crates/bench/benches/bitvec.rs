//! Criterion micro-benchmark of the bit-vector primitives that SR-SP's
//! counting tables rely on (design-choice ablation from DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use umatrix::BitVec;

fn bench_bitvec(c: &mut Criterion) {
    let n = 4096;
    let a = BitVec::from_bools((0..n).map(|i| i % 3 == 0));
    let b = BitVec::from_bools((0..n).map(|i| i % 5 == 0));
    let mut group = c.benchmark_group("bitvec");
    group.sample_size(20);
    group.measurement_time(Duration::from_millis(500));
    group.warm_up_time(Duration::from_millis(100));

    group.bench_function("and_count_word_level", |bench| {
        bench.iter(|| a.and_count(&b))
    });
    group.bench_function("and_count_bit_by_bit", |bench| {
        bench.iter(|| {
            let mut count = 0usize;
            for i in 0..n {
                if a.get(i) && b.get(i) {
                    count += 1;
                }
            }
            count
        })
    });
    group.bench_function("or_and_assign_fused", |bench| {
        let mut target = BitVec::zeros(n);
        bench.iter(|| {
            target.or_and_assign(&a, &b);
            target.count_ones()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bitvec);
criterion_main!(benches);
