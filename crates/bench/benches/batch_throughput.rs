//! `batch_throughput` — the acceptance benchmark of the batch engine: 1k+
//! pair queries over the R-MAT dataset, answered by (a) looping the
//! sequential `QueryEngine::profile` per pair and (b) one thread-sharded
//! `QueryEngine::batch_profile` call.  Pair-keyed RNG streams make the two
//! outputs bit-identical, so the comparison is pure throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;
use ugraph::UncertainGraph;
use usim_bench::random_pairs;
use usim_core::{QueryEngine, SimRankConfig};
use usim_datasets::RmatGenerator;

const NUM_PAIRS: usize = 1024;

fn rmat_graph() -> UncertainGraph {
    RmatGenerator::small(0xba7c).generate()
}

fn bench_batch_throughput(c: &mut Criterion) {
    let graph = rmat_graph();
    let pairs = random_pairs(&graph, NUM_PAIRS, 0x7007);
    // Reduced sample count so one iteration stays benchmark-sized; the
    // speedup ratio is what matters, and it is sample-count-independent.
    let config = SimRankConfig::default().with_samples(20).with_seed(42);
    let engine = QueryEngine::new(&graph, config);

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(2500));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("sequential_profile_loop", |b| {
        b.iter(|| {
            let total: f64 = pairs
                .iter()
                .map(|&(u, v)| engine.profile(u, v).score())
                .sum();
            black_box(total)
        })
    });

    group.bench_function("batch_profile", |b| {
        b.iter(|| {
            let profiles = engine.batch_profile(&pairs).expect("ids are in range");
            black_box(profiles.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
