//! Criterion micro-benchmark backing Fig. 9: per-query latency of the four
//! SimRank estimators on the Net co-authorship stand-in.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use usim_bench::{dataset, random_pairs, Scale};
use usim_core::{
    BaselineEstimator, SamplingEstimator, SimRankConfig, SimRankEstimator, SpeedupEstimator,
    TwoPhaseEstimator,
};

fn bench_estimators(c: &mut Criterion) {
    let graph = dataset("Net", Scale::Ci);
    let pairs = random_pairs(&graph, 8, 0xbe9c);
    let config = SimRankConfig::default().with_samples(200).with_seed(1);

    let mut group = c.benchmark_group("estimators_net");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));

    let baseline = BaselineEstimator::new(&graph, config);
    group.bench_function("baseline", |b| {
        let mut index = 0usize;
        b.iter(|| {
            let (u, v) = pairs[index % pairs.len()];
            index += 1;
            baseline.try_similarity(u, v).unwrap_or(0.0)
        })
    });

    let mut sampling = SamplingEstimator::new(&graph, config);
    group.bench_function("sampling", |b| {
        let mut index = 0usize;
        b.iter(|| {
            let (u, v) = pairs[index % pairs.len()];
            index += 1;
            sampling.similarity(u, v)
        })
    });

    let mut two_phase = TwoPhaseEstimator::new(&graph, config);
    group.bench_function("sr_ts_l1", |b| {
        let mut index = 0usize;
        b.iter(|| {
            let (u, v) = pairs[index % pairs.len()];
            index += 1;
            two_phase.similarity(u, v)
        })
    });

    let mut speedup = SpeedupEstimator::new(&graph, config);
    group.bench_function("sr_sp_l1", |b| {
        let mut index = 0usize;
        b.iter(|| {
            let (u, v) = pairs[index % pairs.len()];
            index += 1;
            speedup.similarity(u, v)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
