//! Criterion ablation of the Section VI-D sharing technique: plain Sampling
//! versus SR-SP at the same number of samples (the paper claims 1–2 orders of
//! magnitude).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use usim_bench::{dataset, random_pairs, Scale};
use usim_core::{SamplingEstimator, SimRankConfig, SimRankEstimator, SpeedupEstimator};

fn bench_speedup_ablation(c: &mut Criterion) {
    let graph = dataset("Net", Scale::Ci);
    let pairs = random_pairs(&graph, 8, 0xab1a);
    let config = SimRankConfig::default().with_samples(1000).with_seed(4);
    let mut group = c.benchmark_group("sampling_vs_speedup_n1000");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));

    let mut sampling = SamplingEstimator::new(&graph, config);
    group.bench_function("per_walk_sampling", |b| {
        let mut index = 0usize;
        b.iter(|| {
            let (u, v) = pairs[index % pairs.len()];
            index += 1;
            sampling.similarity(u, v)
        })
    });

    let mut speedup = SpeedupEstimator::new(&graph, config);
    group.bench_function("shared_bitvector_propagation", |b| {
        let mut index = 0usize;
        b.iter(|| {
            let (u, v) = pairs[index % pairs.len()];
            index += 1;
            speedup.similarity(u, v)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_speedup_ablation);
criterion_main!(benches);
