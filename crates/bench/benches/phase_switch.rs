//! Criterion ablation of the phase-switch parameter `l` of the two-phase
//! algorithm, and of the Lemma 2/3 shortcut inside `TransPr`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwalk::transpr::{transition_matrices, TransPrOptions};
use std::time::Duration;
use ugraph::UncertainGraphBuilder;
use usim_bench::{dataset, random_pairs, Scale};
use usim_core::{SimRankConfig, SimRankEstimator, TwoPhaseEstimator};

fn bench_phase_switch(c: &mut Criterion) {
    let graph = dataset("Net", Scale::Ci);
    let pairs = random_pairs(&graph, 8, 0x9456);
    let mut group = c.benchmark_group("sr_ts_phase_switch");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));
    for l in [1usize, 2, 3] {
        let config = SimRankConfig::default()
            .with_samples(200)
            .with_phase_switch(l)
            .with_seed(5);
        let mut estimator = TwoPhaseEstimator::new(&graph, config);
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            let mut index = 0usize;
            b.iter(|| {
                let (u, v) = pairs[index % pairs.len()];
                index += 1;
                estimator.similarity(u, v)
            })
        });
    }
    group.finish();
}

fn bench_transpr_shortcut(c: &mut Criterion) {
    let graph = UncertainGraphBuilder::new(5)
        .arc(0, 2, 0.8)
        .arc(0, 3, 0.5)
        .arc(1, 0, 0.8)
        .arc(1, 2, 0.9)
        .arc(2, 0, 0.7)
        .arc(2, 3, 0.6)
        .arc(3, 4, 0.6)
        .arc(3, 1, 0.8)
        .build()
        .unwrap();
    let mut group = c.benchmark_group("transpr_shortcut");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(500));
    group.warm_up_time(Duration::from_millis(100));
    group.bench_function("with_shortcut", |b| {
        b.iter(|| transition_matrices(&graph, 5, &TransPrOptions::default()).unwrap())
    });
    group.bench_function("without_shortcut", |b| {
        b.iter(|| {
            transition_matrices(
                &graph,
                5,
                &TransPrOptions {
                    use_shortcut: false,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_phase_switch, bench_transpr_shortcut);
criterion_main!(benches);
