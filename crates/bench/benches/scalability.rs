//! Criterion micro-benchmark backing Fig. 12: SR-TS latency as the R-MAT
//! graph grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use usim_bench::random_pairs;
use usim_core::{SimRankConfig, SimRankEstimator, TwoPhaseEstimator};
use usim_datasets::RmatGenerator;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("sr_ts_rmat");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));
    for num_edges in [20_000usize, 80_000] {
        let graph = RmatGenerator {
            scale: 13,
            num_edges,
            seed: 0x5ca1e,
            ..Default::default()
        }
        .generate();
        let pairs = random_pairs(&graph, 8, 0x5ca1e);
        let config = SimRankConfig::default().with_samples(200).with_seed(3);
        let mut estimator = TwoPhaseEstimator::new(&graph, config);
        group.bench_with_input(
            BenchmarkId::from_parameter(num_edges),
            &num_edges,
            |b, _| {
                let mut index = 0usize;
                b.iter(|| {
                    let (u, v) = pairs[index % pairs.len()];
                    index += 1;
                    estimator.similarity(u, v)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
