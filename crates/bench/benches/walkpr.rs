//! Criterion micro-benchmark of the exact walk-probability machinery
//! (`WalkPr` and the single-source `TransPr` restriction).

use criterion::{criterion_group, criterion_main, Criterion};
use rwalk::transpr::{transition_rows_from, TransPrOptions};
use rwalk::walk::Walk;
use rwalk::walkpr::walk_probability;
use std::time::Duration;
use ugraph::UncertainGraphBuilder;
use usim_bench::{dataset, Scale};

fn bench_walkpr(c: &mut Criterion) {
    let fig1 = UncertainGraphBuilder::new(5)
        .arc(0, 2, 0.8)
        .arc(0, 3, 0.5)
        .arc(1, 0, 0.8)
        .arc(1, 2, 0.9)
        .arc(2, 0, 0.7)
        .arc(2, 3, 0.6)
        .arc(3, 4, 0.6)
        .arc(3, 1, 0.8)
        .build()
        .unwrap();
    let walk = Walk::from_vertices(vec![0, 2, 0, 2, 3, 1, 2, 3, 1]);

    let mut group = c.benchmark_group("walkpr");
    group.sample_size(20);
    group.measurement_time(Duration::from_millis(500));
    group.warm_up_time(Duration::from_millis(100));
    group.bench_function("table1_walk_probability", |b| {
        b.iter(|| walk_probability(&fig1, &walk))
    });

    // Exact single-source enumeration is exponential in the depth; depth 3
    // keeps one iteration in the tens of milliseconds so `cargo bench` stays
    // tractable (depth 5 on the same graph takes ~23 s per call).
    let net = dataset("Net", Scale::Ci);
    group.bench_function("transition_rows_net_n3", |b| {
        b.iter(|| transition_rows_from(&net, 1, 3, &TransPrOptions::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_walkpr);
criterion_main!(benches);
