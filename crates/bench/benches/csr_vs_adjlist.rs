//! `csr_vs_adjlist` — the walk-sampling hot loop on the legacy
//! adjacency-walking `WalkSampler` (per-walk `HashMap` memo, per-visit `Vec`
//! allocations) versus the CSR fast path (`CsrSampler` + `WalkArena`,
//! allocation-free in steady state).  Both sample the same walks from the
//! same seeds; the difference is pure representation and allocator traffic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rwalk::arena::{CsrSampler, WalkArena};
use rwalk::sampler::WalkSampler;
use std::time::Duration;
use ugraph::CsrGraph;
use usim_bench::{dataset, random_pairs, Scale};

const HORIZON: usize = 5;
const WALKS_PER_ITER: usize = 200;

fn bench_csr_vs_adjlist(c: &mut Criterion) {
    let graph = dataset("Net", Scale::Ci);
    let starts: Vec<u32> = random_pairs(&graph, WALKS_PER_ITER / 2, 0xc5a)
        .into_iter()
        .flat_map(|(u, v)| [u, v])
        .collect();
    // Both samplers walk in-neighbors (the SimRank direction): the legacy
    // path materialises the transpose, the CSR path just picks the reverse
    // view.
    let transposed = graph.transpose();
    let csr = CsrGraph::from_uncertain(&graph);

    let mut group = c.benchmark_group("csr_vs_adjlist");
    group.sample_size(20);
    group.measurement_time(Duration::from_millis(1200));
    group.warm_up_time(Duration::from_millis(300));

    group.bench_function("adjlist_walk_sampler", |b| {
        let mut sampler = WalkSampler::new(&transposed);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut met = 0usize;
            for &start in &starts {
                let walk = sampler.sample_walk(start, HORIZON, &mut rng);
                met += walk.position(HORIZON).is_some() as usize;
            }
            black_box(met)
        })
    });

    group.bench_function("csr_arena_sampler", |b| {
        let sampler = CsrSampler::new(csr.reverse());
        let mut arena = WalkArena::with_capacity(graph.num_vertices());
        let mut positions = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut met = 0usize;
            for &start in &starts {
                sampler.sample_walk_into(&mut arena, start, HORIZON, &mut rng, &mut positions);
                met += (positions[HORIZON] != rwalk::arena::DEAD) as usize;
            }
            black_box(met)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_csr_vs_adjlist);
criterion_main!(benches);
