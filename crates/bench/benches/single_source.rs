//! Criterion ablation of the single-source extension: answering a top-k
//! query with one shared-instantiation single-source pass versus |V|
//! independent SR-SP single-pair queries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use usim_bench::{dataset, Scale};
use usim_core::{top_k_similar_to, SimRankConfig, SingleSourceEstimator, SpeedupEstimator};

fn bench_single_source(c: &mut Criterion) {
    let graph = dataset("Net", Scale::Ci);
    let config = SimRankConfig::default().with_samples(200).with_seed(6);
    let source = 1u32;
    let k = 10;

    let mut group = c.benchmark_group("top_k_net");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));

    group.bench_function("single_source_pass", |b| {
        let mut estimator = SingleSourceEstimator::new(&graph, config);
        b.iter(|| estimator.top_k(source, k))
    });

    // The pairwise route costs one SR-SP query per candidate; restrict it to
    // 300 candidates so one bench iteration stays under a second (the
    // single-source pass above still covers every vertex of the graph, which
    // only widens its advantage).
    group.bench_function("pairwise_sr_sp_300_candidates", |b| {
        let mut estimator = SpeedupEstimator::new(&graph, config);
        let candidates: Vec<u32> = graph.vertices().take(300).collect();
        b.iter(|| top_k_similar_to(&mut estimator, source, candidates.iter().copied(), k))
    });

    group.finish();
}

criterion_group!(benches, bench_single_source);
criterion_main!(benches);
