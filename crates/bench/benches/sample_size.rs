//! Criterion micro-benchmark backing Fig. 11: SR-SP latency as a function of
//! the number of sampled walks N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use usim_bench::{dataset, random_pairs, Scale};
use usim_core::{SimRankConfig, SimRankEstimator, SpeedupEstimator};

fn bench_sample_size(c: &mut Criterion) {
    let graph = dataset("Net", Scale::Ci);
    let pairs = random_pairs(&graph, 8, 0x5a);
    let mut group = c.benchmark_group("sr_sp_samples");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(800));
    group.warm_up_time(Duration::from_millis(200));
    for n_samples in [100usize, 500, 1000] {
        let config = SimRankConfig::default()
            .with_samples(n_samples)
            .with_seed(2);
        let mut estimator = SpeedupEstimator::new(&graph, config);
        group.bench_with_input(
            BenchmarkId::from_parameter(n_samples),
            &n_samples,
            |b, _| {
                let mut index = 0usize;
                b.iter(|| {
                    let (u, v) = pairs[index % pairs.len()];
                    index += 1;
                    estimator.similarity(u, v)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sample_size);
criterion_main!(benches);
