#!/usr/bin/env bash
# bench-gates: run the regression-gated benchmarks in one loop.
#
# Each gate is a usim_bench binary that measures itself against its checked-in
# baseline (crates/bench/baselines/<gate>.json) and exits non-zero on a
# regression.  The report is written to BENCH_<gate>.json in the repo root so
# CI can upload every artifact from a single glob.
#
# Usage:
#   scripts/bench_gates.sh                 # the default (bench-smoke) gate set
#   scripts/bench_gates.sh serve_throughput  # an explicit gate list
set -euo pipefail
cd "$(dirname "$0")/.."

DEFAULT_GATES=(batch_smoke update_churn cache_throughput cache_churn cold_start alias_speedup obs_overhead)
GATES=("${@:-${DEFAULT_GATES[@]}}")

for gate in "${GATES[@]}"; do
    # Gate names follow the baseline/report files; most binaries share the
    # gate's name, the original smoke gate predates that convention.
    case "$gate" in
        batch_smoke) bin=bench_smoke ;;
        alias_speedup) bin=csr_vs_alias ;;
        update_churn | cache_throughput | cache_churn | cold_start | serve_throughput | obs_overhead) bin=$gate ;;
        *) echo "bench-gates: unknown gate '$gate'" >&2; exit 2 ;;
    esac
    echo "=== gate: $gate (bin: $bin) ==="
    USIM_BENCH_OUT="BENCH_${gate}.json" \
        cargo run --release -p usim_bench --bin "$bin"
done

echo "bench-gates: all gates passed (${GATES[*]})"
