#!/usr/bin/env bash
# serve-smoke: start a real `usim serve` process, drive one of each request
# type through a scripted client (bash /dev/tcp — no extra tooling), and
# assert the responses match the CLI answers for the same graph and seed.
#
# The rigorous bit-identity contract is pinned by the Rust test suites
# (crates/cli/tests/serve_equivalence.rs, crates/server/tests/); this script
# proves the *shipped binary* end to end: process startup, port-file
# rendezvous, the TCP loop, and graceful --max-connections shutdown.
#
# Knobs (all optional — defaults reproduce the classic single-shard run):
#   USIM_SMOKE_SHARDS           shard count for the main round      [1]
#   USIM_SMOKE_SOURCE           main-round boot source: text|snapshot [text]
#   USIM_SMOKE_COALESCE_WINDOW  coalescing window in µs; 0 = off    [0]
#   USIM_SMOKE_SAMPLER          walk backend: legacy|alias          [legacy]
# CI runs the script three times: once with the defaults, once with
# --shards 2 --snapshot + coalescing, and once with --sampler alias
# --snapshot, so the sharded, snapshot-booted, coalesced and alias-table
# serving paths are all exercised on the shipped binary.  The sampler kind
# applies to every round (including the CLI ground truth), so the whole
# pipeline is asserted end to end under the selected backend.
set -euo pipefail
cd "$(dirname "$0")/.."

SAMPLES=200
SEED=7
SMOKE_SHARDS=${USIM_SMOKE_SHARDS:-1}
SMOKE_SOURCE=${USIM_SMOKE_SOURCE:-text}
SMOKE_COALESCE_WINDOW=${USIM_SMOKE_COALESCE_WINDOW:-0}
SMOKE_SAMPLER=${USIM_SMOKE_SAMPLER:-legacy}
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

cargo build --release -p usim_cli
USIM=target/release/usim

# A small fixed graph with non-compact labels, like real edge lists.
cat > "$TMP/graph.tsv" <<'EOF'
10 30 0.8
10 40 0.5
20 10 0.8
20 30 0.9
30 10 0.7
30 40 0.6
40 50 0.6
40 20 0.8
EOF
printf '10 20\n20 30\n30 40\n' > "$TMP/pairs.txt"

# CLI ground truth: batch scores before and after one update round.
printf -- '= 10 30 0.1\n- 40 50\n' > "$TMP/updates.txt"
CLI_BATCH=$("$USIM" simrank "$TMP/graph.tsv" --batch "$TMP/pairs.txt" \
    --samples "$SAMPLES" --seed "$SEED" --sampler "$SMOKE_SAMPLER")
CLI_CHURN=$("$USIM" simrank "$TMP/graph.tsv" --batch "$TMP/pairs.txt" \
    --updates "$TMP/updates.txt" --samples "$SAMPLES" --seed "$SEED" \
    --sampler "$SMOKE_SAMPLER")
echo "--- CLI ground truth ---"
echo "$CLI_BATCH"
echo "$CLI_CHURN"

# Opens fd 3 to $1:$2 with a bounded retry loop.  Between the port file
# appearing and the accept loop picking the connection up there is a real
# race on slow machines; a raw `exec 3<>/dev/tcp/...` that loses it kills
# the whole script.  The retry wraps the *real* connection — a separate
# probe connect would burn the server's --max-connections budget.
connect3() {
    local host=$1 port=$2 attempt
    for attempt in $(seq 30); do
        if exec 3<>"/dev/tcp/$host/$port" 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: cannot connect to $host:$port after 30 attempts"
    return 1
}
ask() {
    printf '%s\n' "$1" >&3
    local response
    IFS= read -r response <&3
    printf '%s\n' "$response"
}

# Main-round server configuration from the knobs: boot source, shard
# count, and (optionally) request coalescing.
SERVE_EXTRA=(--shards "$SMOKE_SHARDS" --sampler "$SMOKE_SAMPLER")
if [ "$SMOKE_COALESCE_WINDOW" -gt 0 ]; then
    SERVE_EXTRA+=(--coalesce-window "$SMOKE_COALESCE_WINDOW" --coalesce-max 8)
fi
case "$SMOKE_SOURCE" in
    text) SERVE_SOURCE=("$TMP/graph.tsv") ;;
    snapshot)
        "$USIM" snapshot write "$TMP/graph.tsv" "$TMP/graph_main.csr"
        SERVE_SOURCE=(--snapshot "$TMP/graph_main.csr")
        ;;
    *) echo "FAIL: USIM_SMOKE_SOURCE must be text or snapshot, got $SMOKE_SOURCE"; exit 1 ;;
esac

# Start the server on a free port; rendezvous through the port file.  The
# startup banner is captured so its provenance fields can be asserted.
"$USIM" serve "${SERVE_SOURCE[@]}" --addr 127.0.0.1:0 --port-file "$TMP/port" \
    --workers 2 --max-connections 1 "${SERVE_EXTRA[@]}" \
    --samples "$SAMPLES" --seed "$SEED" \
    > "$TMP/server1.log" &
SERVER_PID=$!
for _ in $(seq 100); do
    [ -s "$TMP/port" ] && break
    sleep 0.1
done
[ -s "$TMP/port" ] || { echo "FAIL: server never wrote the port file"; exit 1; }
ADDR=$(cat "$TMP/port")
HOST=${ADDR%:*}
PORT=${ADDR##*:}
echo "--- server up on $ADDR (source = $SMOKE_SOURCE, shards = $SMOKE_SHARDS, sampler = $SMOKE_SAMPLER, coalesce window = ${SMOKE_COALESCE_WINDOW}us) ---"
grep -q "source = $SMOKE_SOURCE, epoch = 0, shards = $SMOKE_SHARDS" "$TMP/server1.log" || {
    echo "FAIL: banner misses source/epoch/shards:"; cat "$TMP/server1.log"; exit 1; }
grep -q "sampler = $SMOKE_SAMPLER" "$TMP/server1.log" || {
    echo "FAIL: banner misses 'sampler = $SMOKE_SAMPLER':"; cat "$TMP/server1.log"; exit 1; }
if [ "$SMOKE_COALESCE_WINDOW" -gt 0 ]; then
    grep -q "coalesce = ${SMOKE_COALESCE_WINDOW}us/cap 8" "$TMP/server1.log" || {
        echo "FAIL: banner misses the coalesce settings:"; cat "$TMP/server1.log"; exit 1; }
else
    grep -q 'coalesce = off' "$TMP/server1.log" || {
        echo "FAIL: banner misses 'coalesce = off':"; cat "$TMP/server1.log"; exit 1; }
fi

# One connection, one frame of every request type, responses in order.
connect3 "$HOST" "$PORT"

R_STATS=$(ask '{"type":"stats"}')
R_SIM=$(ask '{"type":"similarity","source":10,"target":20}')
R_PROFILE=$(ask '{"type":"profile","source":10,"target":20}')
R_TOPK=$(ask '{"type":"top_k","source":20,"k":3}')
R_BATCH=$(ask '{"type":"batch","pairs":[[10,20],[20,30],[30,40]]}')
R_BAD=$(ask '{oops')
R_UPDATE=$(ask '{"type":"update","updates":[{"op":"set","source":10,"target":30,"probability":0.1},{"op":"delete","source":40,"target":50}]}')
R_BATCH2=$(ask '{"type":"batch","pairs":[[10,20],[20,30],[30,40]]}')
exec 3<&- 3>&-
wait "$SERVER_PID"
SERVER_PID=""
echo "--- server exited cleanly after its connection budget ---"
[ ! -f "$TMP/port" ] || {
    echo "FAIL: clean shutdown left the port file behind"; exit 1; }

for response in "$R_STATS" "$R_SIM" "$R_PROFILE" "$R_TOPK" "$R_BATCH" "$R_UPDATE" "$R_BATCH2"; do
    echo "$response"
    case "$response" in
        '{"ok":true,'*) ;;
        *) echo "FAIL: expected an ok frame, got: $response"; exit 1 ;;
    esac
done
case "$R_BAD" in
    *'"code":"malformed_frame"'*) echo "$R_BAD" ;;
    *) echo "FAIL: malformed frame not rejected as typed error: $R_BAD"; exit 1 ;;
esac
case "$R_STATS" in
    *'"vertices":5'*'"arcs":8'*) ;;
    *) echo "FAIL: bad stats frame: $R_STATS"; exit 1 ;;
esac
# The walk backend must be reported as a top-level stats field.
case "$R_STATS" in
    *'"sampler":"'"$SMOKE_SAMPLER"'"'*) ;;
    *) echo "FAIL: stats frame misses sampler kind '$SMOKE_SAMPLER': $R_STATS"; exit 1 ;;
esac
# Observability sections must always be present; the stats frame was the
# connection's first, so zero earlier frames have been timed yet.
case "$R_STATS" in
    *'"latency":{"count":0,'*'"p99_us":'*'"coalescer":{"enabled":'*) ;;
    *) echo "FAIL: stats frame misses latency/coalescer sections: $R_STATS"; exit 1 ;;
esac
if [ "$SMOKE_COALESCE_WINDOW" -gt 0 ]; then
    case "$R_STATS" in
        *'"coalescer":{"enabled":true,"window_us":'"$SMOKE_COALESCE_WINDOW"',"cap":8,'*) ;;
        *) echo "FAIL: coalescer not reported enabled in stats: $R_STATS"; exit 1 ;;
    esac
else
    case "$R_STATS" in
        *'"coalescer":{"enabled":false,'*) ;;
        *) echo "FAIL: coalescer reported enabled without the flag: $R_STATS"; exit 1 ;;
    esac
fi
case "$R_UPDATE" in
    *'"epoch":1'*'"deleted":1'*'"reweighted":1'*) ;;
    *) echo "FAIL: bad update summary: $R_UPDATE"; exit 1 ;;
esac

# The served scores, rounded like the CLI tables, must match the CLI cell
# for cell: wire batch == `simrank --batch` (s@r0 / s(u, v) column) and the
# post-update batch == the churn table's s@r1 column.
extract_scores() { # json-line -> one 6-decimal score per line
    printf '%s\n' "$1" | awk '{
        start = index($0, "\"scores\":[") + 10
        rest = substr($0, start)
        split(substr(rest, 1, index(rest, "]") - 1), scores, ",")
        for (i = 1; i in scores; i++) printf "%.6f\n", scores[i]
    }'
}
table_column() { # table text, 1-based score column among trailing fields
    printf '%s\n' "$2" | awk -v col="$1" \
        'NF >= 3 && $1 ~ /^[0-9]+$/ && $2 ~ /^[0-9]+$/ { print $(2 + col) }'
}
SERVED_BEFORE=$(extract_scores "$R_BATCH")
SERVED_AFTER=$(extract_scores "$R_BATCH2")
CLI_BEFORE=$(table_column 1 "$CLI_BATCH")
CLI_BEFORE_CHURN=$(table_column 1 "$CLI_CHURN")
CLI_AFTER=$(table_column 2 "$CLI_CHURN")

[ "$SERVED_BEFORE" = "$CLI_BEFORE" ] || {
    echo "FAIL: served batch != CLI batch"; echo "served: $SERVED_BEFORE"; echo "cli: $CLI_BEFORE"; exit 1; }
[ "$SERVED_BEFORE" = "$CLI_BEFORE_CHURN" ] || {
    echo "FAIL: served batch != CLI churn round 0"; exit 1; }
[ "$SERVED_AFTER" = "$CLI_AFTER" ] || {
    echo "FAIL: served post-update batch != CLI churn round 1"; echo "served: $SERVED_AFTER"; echo "cli: $CLI_AFTER"; exit 1; }
[ "$SERVED_BEFORE" != "$SERVED_AFTER" ] || {
    echo "FAIL: update had no effect on served scores"; exit 1; }

# --- cached-server round -----------------------------------------------
# Same graph and seed, --cache-capacity on: the same batch asked twice must
# come back byte-identical (the repeat is served from the cache), match the
# CLI scores, and the stats frame must report the hits.  Then an update
# that is *disjoint* from every cached walk footprint (a self-loop on
# label 50, which no reverse walk from the queried pairs ever reaches) is
# applied: the entries must survive revalidation and keep serving the same
# scores at the new epoch without recomputing.
"$USIM" serve "$TMP/graph.tsv" --addr 127.0.0.1:0 --port-file "$TMP/port" \
    --workers 2 --max-connections 1 --cache-capacity 1024 \
    --samples "$SAMPLES" --seed "$SEED" --sampler "$SMOKE_SAMPLER" &
SERVER_PID=$!
for _ in $(seq 100); do
    [ -s "$TMP/port" ] && break
    sleep 0.1
done
[ -s "$TMP/port" ] || { echo "FAIL: cached server never wrote the port file"; exit 1; }
ADDR=$(cat "$TMP/port")
HOST=${ADDR%:*}
PORT=${ADDR##*:}
echo "--- cached server up on $ADDR ---"

connect3 "$HOST" "$PORT"
C_BATCH1=$(ask '{"type":"batch","pairs":[[10,20],[20,30],[30,40]]}')
C_BATCH2=$(ask '{"type":"batch","pairs":[[10,20],[20,30],[30,40]]}')
C_UPDATE=$(ask '{"type":"update","updates":[{"op":"insert","source":50,"target":50,"probability":0.5}]}')
C_BATCH3=$(ask '{"type":"batch","pairs":[[10,20],[20,30],[30,40]]}')
C_STATS=$(ask '{"type":"stats"}')
exec 3<&- 3>&-
wait "$SERVER_PID"
SERVER_PID=""
[ ! -f "$TMP/port" ] || {
    echo "FAIL: cached server's clean shutdown left the port file behind"; exit 1; }

[ "$C_BATCH1" = "$C_BATCH2" ] || {
    echo "FAIL: cached repeat batch differs from the fill batch"
    echo "first:  $C_BATCH1"; echo "second: $C_BATCH2"; exit 1; }
C_SERVED=$(extract_scores "$C_BATCH1")
[ "$C_SERVED" = "$CLI_BEFORE" ] || {
    echo "FAIL: cached batch != CLI batch"
    echo "served: $C_SERVED"; echo "cli: $CLI_BEFORE"; exit 1; }
case "$C_UPDATE" in
    *'"error"'*) echo "FAIL: disjoint update frame errored: $C_UPDATE"; exit 1 ;;
esac
# The update touched only label 50, which none of the cached footprints
# contain: all 3 entries must survive and answer batch 3 from the cache —
# same scores, new epoch, 6 total hits (3 from the repeat, 3 from the
# survivors), zero killed.
C_SERVED3=$(extract_scores "$C_BATCH3")
C_SERVED1=$(extract_scores "$C_BATCH1")
[ "$C_SERVED3" = "$C_SERVED1" ] || {
    echo "FAIL: survivors changed their scores after a disjoint update"
    echo "before: $C_SERVED1"; echo "after: $C_SERVED3"; exit 1; }
case "$C_STATS" in
    *'"cache":{"enabled":true,"capacity":1024'*'"hits":6'*) echo "$C_STATS" ;;
    *) echo "FAIL: cached stats frame misses the cache counters: $C_STATS"; exit 1 ;;
esac
case "$C_STATS" in
    *'"survived":3'*) ;;
    *) echo "FAIL: stats frame does not report 3 survivors: $C_STATS"; exit 1 ;;
esac
case "$C_STATS" in
    *'"killed":0'*) ;;
    *) echo "FAIL: disjoint update killed cache entries: $C_STATS"; exit 1 ;;
esac
# Four frames (two batches, the update, the survivor batch) were flushed
# before the stats frame was built, so the histogram must have timed
# exactly those four.
case "$C_STATS" in
    *'"latency":{"count":4,'*) ;;
    *) echo "FAIL: latency histogram did not count the served frames: $C_STATS"; exit 1 ;;
esac
echo "--- cached server: repeat batch bit-identical, 3 entries survived a disjoint update ---"

# --- snapshot-backed server round ---------------------------------------
# Compile the graph into a CSR snapshot, serve it sharded with a durable
# update log, apply an update, let the server die, restart it on the same
# snapshot + log: the replayed server must report the exact epoch it died
# at and answer the same batch byte-identically.
"$USIM" snapshot write "$TMP/graph.tsv" "$TMP/graph.csr"
"$USIM" snapshot verify "$TMP/graph.csr"

"$USIM" serve --snapshot "$TMP/graph.csr" --update-log "$TMP/updates.log" \
    --addr 127.0.0.1:0 --port-file "$TMP/port" --workers 2 --shards 3 \
    --max-connections 1 --samples "$SAMPLES" --seed "$SEED" \
    --sampler "$SMOKE_SAMPLER" > "$TMP/server_snap1.log" &
SERVER_PID=$!
for _ in $(seq 100); do
    [ -s "$TMP/port" ] && break
    sleep 0.1
done
[ -s "$TMP/port" ] || { echo "FAIL: snapshot server never wrote the port file"; exit 1; }
ADDR=$(cat "$TMP/port")
HOST=${ADDR%:*}
PORT=${ADDR##*:}
echo "--- snapshot server (first life) up on $ADDR ---"
grep -q 'source = snapshot, epoch = 0, shards = 3' "$TMP/server_snap1.log" || {
    echo "FAIL: snapshot banner misses source/epoch/shards:"; cat "$TMP/server_snap1.log"; exit 1; }

connect3 "$HOST" "$PORT"
S_UPDATE=$(ask '{"type":"update","updates":[{"op":"set","source":10,"target":30,"probability":0.1},{"op":"delete","source":40,"target":50}]}')
S_BATCH=$(ask '{"type":"batch","pairs":[[10,20],[20,30],[30,40]]}')
exec 3<&- 3>&-
wait "$SERVER_PID"
SERVER_PID=""
echo "--- snapshot server died after its connection budget (simulated crash) ---"
case "$S_UPDATE" in
    '{"ok":true,'*'"epoch":1'*) ;;
    *) echo "FAIL: bad snapshot-server update frame: $S_UPDATE"; exit 1 ;;
esac

# Second life: same snapshot, same log.  Boot must replay the logged round.
"$USIM" serve --snapshot "$TMP/graph.csr" --update-log "$TMP/updates.log" \
    --addr 127.0.0.1:0 --port-file "$TMP/port" --workers 2 --shards 3 \
    --max-connections 1 --samples "$SAMPLES" --seed "$SEED" \
    --sampler "$SMOKE_SAMPLER" > "$TMP/server_snap2.log" &
SERVER_PID=$!
for _ in $(seq 100); do
    [ -s "$TMP/port" ] && break
    sleep 0.1
done
[ -s "$TMP/port" ] || { echo "FAIL: replayed server never wrote the port file"; exit 1; }
ADDR=$(cat "$TMP/port")
HOST=${ADDR%:*}
PORT=${ADDR##*:}
echo "--- snapshot server (second life) up on $ADDR ---"
grep -q 'source = snapshot, epoch = 1, shards = 3' "$TMP/server_snap2.log" || {
    echo "FAIL: replayed banner misses the replayed epoch:"; cat "$TMP/server_snap2.log"; exit 1; }

connect3 "$HOST" "$PORT"
S_BATCH_REPLAYED=$(ask '{"type":"batch","pairs":[[10,20],[20,30],[30,40]]}')
S_STATS=$(ask '{"type":"stats"}')
exec 3<&- 3>&-
wait "$SERVER_PID"
SERVER_PID=""

[ "$S_BATCH_REPLAYED" = "$S_BATCH" ] || {
    echo "FAIL: replayed server batch differs from the pre-crash batch"
    echo "before: $S_BATCH"; echo "after:  $S_BATCH_REPLAYED"; exit 1; }
SNAP_SERVED=$(extract_scores "$S_BATCH_REPLAYED")
[ "$SNAP_SERVED" = "$CLI_AFTER" ] || {
    echo "FAIL: replayed snapshot batch != CLI churn round 1"
    echo "served: $SNAP_SERVED"; echo "cli: $CLI_AFTER"; exit 1; }
case "$S_STATS" in
    *'"epoch":1'*'"shard_count":3'*) echo "$S_STATS" ;;
    *) echo "FAIL: replayed stats frame misses epoch/shard_count: $S_STATS"; exit 1 ;;
esac
echo "--- snapshot server: replay restored epoch 1, answers byte-identical ---"

# --- observability round -------------------------------------------------
# Trace every request (--trace-sample-rate 1), run the Prometheus exporter
# on a free port, and assert the whole observability surface on the shipped
# binary: trace/stage fields in `stats`, the `slow_queries` ring, the
# `metrics` frame, the plaintext HTTP exporter (exposition saved to
# $USIM_SMOKE_METRICS_OUT and linted), and the stage-sum invariant — every
# slow-query entry's stage timings sum to at most its end-to-end total.
# Tracing must not change a single response byte: the traced batch is
# compared against the main round's.
METRICS_OUT=${USIM_SMOKE_METRICS_OUT:-$TMP/exposition.txt}
"$USIM" serve "$TMP/graph.tsv" --addr 127.0.0.1:0 --port-file "$TMP/port" \
    --workers 2 --max-connections 1 --trace-sample-rate 1 --slow-log 8 \
    --metrics-port 0 --metrics-port-file "$TMP/mport" \
    --samples "$SAMPLES" --seed "$SEED" --sampler "$SMOKE_SAMPLER" \
    > "$TMP/server_obs.log" &
SERVER_PID=$!
for _ in $(seq 100); do
    [ -s "$TMP/port" ] && [ -s "$TMP/mport" ] && break
    sleep 0.1
done
[ -s "$TMP/port" ] || { echo "FAIL: traced server never wrote the port file"; exit 1; }
[ -s "$TMP/mport" ] || { echo "FAIL: traced server never wrote the metrics port file"; exit 1; }
ADDR=$(cat "$TMP/port")
HOST=${ADDR%:*}
PORT=${ADDR##*:}
METRICS_ADDR=$(cat "$TMP/mport")
echo "--- traced server up on $ADDR (exporter on $METRICS_ADDR) ---"
grep -q 'trace = 1/slow 8' "$TMP/server_obs.log" || {
    echo "FAIL: banner misses the trace settings:"; cat "$TMP/server_obs.log"; exit 1; }
grep -q "metrics = $METRICS_ADDR" "$TMP/server_obs.log" || {
    echo "FAIL: banner misses the exporter address:"; cat "$TMP/server_obs.log"; exit 1; }

connect3 "$HOST" "$PORT"
T_SIM=$(ask '{"type":"similarity","source":10,"target":20}')
T_BATCH=$(ask '{"type":"batch","pairs":[[10,20],[20,30],[30,40]]}')
T_STATS=$(ask '{"type":"stats"}')
T_SLOW=$(ask '{"type":"slow_queries"}')
T_METRICS=$(ask '{"type":"metrics"}')

# The exporter answers a plain HTTP/1.0 scrape while the server runs.
exec 4<>"/dev/tcp/${METRICS_ADDR%:*}/${METRICS_ADDR##*:}"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&4
SCRAPE=$(cat <&4)
exec 4<&- 4>&-
printf '%s\n' "$SCRAPE" | sed '1,/^\r*$/d' > "$METRICS_OUT"

exec 3<&- 3>&-
wait "$SERVER_PID"
SERVER_PID=""
[ ! -f "$TMP/mport" ] || {
    echo "FAIL: clean shutdown left the metrics port file behind"; exit 1; }

# Tracing is byte-invisible: the traced answers equal the main round's.
[ "$T_SIM" = "$R_SIM" ] || {
    echo "FAIL: traced similarity differs from the untraced answer"
    echo "traced:   $T_SIM"; echo "untraced: $R_SIM"; exit 1; }
[ "$T_BATCH" = "$R_BATCH" ] || {
    echo "FAIL: traced batch differs from the untraced answer"
    echo "traced:   $T_BATCH"; echo "untraced: $R_BATCH"; exit 1; }
# Trace/stage fields on the wire: the stats frame was the connection's
# third, so two query frames (plus it) have been traced by then.
case "$T_STATS" in
    *'"tracing":{"enabled":true,"sample_every":1,"traced":'*) ;;
    *) echo "FAIL: stats frame misses the tracing section: $T_STATS"; exit 1 ;;
esac
case "$T_STATS" in
    *'"stage":"walk_sample","count":2,'*) ;;
    *) echo "FAIL: walk_sample stage did not count both queries: $T_STATS"; exit 1 ;;
esac
case "$T_STATS" in
    *'"walks":{"enabled":true,"walks":'*) ;;
    *) echo "FAIL: stats frame misses the walk counters: $T_STATS"; exit 1 ;;
esac
case "$T_SLOW" in
    *'"tracing":true'*'"trace_id":'*'"stages_us":{"parse":'*) echo "$T_SLOW" ;;
    *) echo "FAIL: slow_queries frame misses trace entries: $T_SLOW"; exit 1 ;;
esac
# Stage-sum invariant on every slow-log entry the wire reports.
# (Stage names carry no digits, so summing every number after "stages_us"
# sums exactly the eight per-stage values.)
printf '%s\n' "$T_SLOW" | awk '
    { line = $0
      while (match(line, /"total_us":[0-9]+,"stages_us":\{[^}]*\}/)) {
          entry = substr(line, RSTART, RLENGTH)
          line = substr(line, RSTART + RLENGTH)
          match(entry, /[0-9]+/)
          total = substr(entry, RSTART, RLENGTH) + 0
          sub(/^.*"stages_us":\{/, "", entry)
          n = split(entry, nums, /[^0-9]+/)
          sum = 0
          for (i = 1; i <= n; i++) sum += nums[i]
          if (sum > total) {
              printf "FAIL: stage sum %dus > total %dus\n", sum, total
              exit 1
          }
          checked++
      } }
    END { if (checked == 0) { print "FAIL: no slow-query entries checked"; exit 1 }
          printf "stage-sum invariant held on %d slow-query entries\n", checked }' || exit 1
case "$T_METRICS" in
    *'"body":"'*'usim_requests_total'*) ;;
    *) echo "FAIL: metrics frame misses the exposition body: $T_METRICS"; exit 1 ;;
esac
# The scrape carried the same exposition over HTTP, and it lints clean.
grep -q 'usim_requests_total{kind="similarity"} 1' "$METRICS_OUT" || {
    echo "FAIL: exporter exposition misses the similarity counter:"; cat "$METRICS_OUT"; exit 1; }
grep -q 'usim_stage_duration_seconds_bucket{stage="walk_sample"' "$METRICS_OUT" || {
    echo "FAIL: exporter exposition misses the stage histograms:"; cat "$METRICS_OUT"; exit 1; }
scripts/lint_prometheus.sh "$METRICS_OUT"
echo "--- traced server: stages on the wire, exporter scraped and linted, answers byte-identical ---"

echo "serve-smoke: OK (server answers match the CLI bit for bit at 6 decimals)"
