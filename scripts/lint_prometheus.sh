#!/usr/bin/env bash
# lint-prometheus: structural linter for a Prometheus text exposition
# (format 0.0.4), pure awk — no promtool in the container.
#
# Checks, per the exposition format spec:
#   * every line is a comment (# HELP / # TYPE), blank, or a well-formed
#     sample `name{labels} value`;
#   * every sampled metric family is preceded by a # TYPE with a valid
#     type (counter | gauge | histogram | summary | untyped);
#   * counter and histogram sample values are non-negative and finite
#     (+Inf is legal only as a `le` label value, never as a sample);
#   * every histogram *series* (family + labels minus `le`) ends at
#     `le="+Inf"`, its cumulative bucket counts are non-decreasing in
#     emission order, the +Inf bucket equals the series' _count sample,
#     and _count and _sum are both present.
#
# Usage: scripts/lint_prometheus.sh EXPOSITION_FILE
set -euo pipefail

FILE=${1:?usage: lint_prometheus.sh EXPOSITION_FILE}
[ -s "$FILE" ] || { echo "lint-prometheus: FAIL: $FILE is missing or empty"; exit 1; }

awk '
function fail(message) {
    printf "lint-prometheus: FAIL (line %d): %s: %s\n", NR, message, $0
    bad = 1
}
# The histogram family a _bucket/_count/_sum sample belongs to.
function family_of(name) {
    sub(/_(bucket|count|sum)$/, "", name)
    return name
}
# The series key: family plus its labels with any le="..." removed.
function series_key(fam, labels) {
    gsub(/le="[^"]*",?/, "", labels)
    gsub(/,\}/, "}", labels)
    sub(/\{\}/, "", labels)
    return fam labels
}
/^$/ { next }
/^# HELP / {
    if (!match($0, /^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* ./)) fail("malformed HELP")
    next
}
/^# TYPE / {
    if (!match($0, /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$/))
        fail("malformed or unknown TYPE")
    type[$3] = $4
    next
}
/^#/ { fail("unknown comment form (only HELP and TYPE exist in 0.0.4)"); next }
{
    # One sample: name, optional {labels}, one value (no timestamps here).
    if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$/)) {
        fail("not a comment, blank, or sample line")
        next
    }
    name = $1
    labels = ""
    if (match(name, /\{.*\}/)) {
        labels = substr(name, RSTART, RLENGTH)
        name = substr(name, 1, RSTART - 1)
    }
    value = $2
    if (!match(value, /^(-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|[-+]Inf|NaN)$/)) {
        fail("malformed sample value")
        next
    }
    fam = family_of(name)
    if (name in type) declared = name
    else if (fam in type && type[fam] == "histogram") declared = fam
    else { fail("sample with no preceding # TYPE"); next }
    t = type[declared]
    if (value == "NaN" || value == "+Inf" || value == "-Inf") {
        if (t == "counter" || t == "histogram") fail("non-finite " t " value")
        next
    }
    if ((t == "counter" || t == "histogram") && value + 0 < 0)
        fail("negative " t " value")
    if (t == "histogram") {
        series = series_key(declared, labels)
        if (name == declared "_count") count[series] = value + 0
        else if (name == declared "_sum") sum_seen[series] = 1
        else if (name == declared "_bucket") {
            if (!match(labels, /le="[^"]*"/)) { fail("bucket without le label"); next }
            le = substr(labels, RSTART + 4, RLENGTH - 5)
            if ((series in last_bucket) && value + 0 < last_bucket[series])
                fail("cumulative bucket count decreased")
            last_bucket[series] = value + 0
            last_le[series] = le
            if (le == "+Inf") inf_bucket[series] = value + 0
        }
    }
}
END {
    for (series in last_le) {
        if (last_le[series] != "+Inf") {
            printf "lint-prometheus: FAIL: histogram %s does not end at le=\"+Inf\"\n", series
            bad = 1
        }
        if (!(series in count)) {
            printf "lint-prometheus: FAIL: histogram %s misses _count\n", series
            bad = 1
        } else if (inf_bucket[series] != count[series]) {
            printf "lint-prometheus: FAIL: histogram %s +Inf bucket %d != _count %d\n", \
                series, inf_bucket[series], count[series]
            bad = 1
        }
        if (!(series in sum_seen)) {
            printf "lint-prometheus: FAIL: histogram %s misses _sum\n", series
            bad = 1
        }
    }
    for (series in count) {
        if (!(series in last_le)) {
            printf "lint-prometheus: FAIL: histogram %s has _count but no buckets\n", series
            bad = 1
        }
    }
    if (bad) exit 1
}
' "$FILE"

echo "lint-prometheus: OK ($FILE)"
