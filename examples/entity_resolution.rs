//! Entity resolution on an uncertain record-similarity graph (Application 2
//! of the paper's introduction, Table V of its evaluation).
//!
//! Bibliographic records written by authors who share a name are clustered
//! into per-person entities by four algorithms: SimER (uncertain SimRank,
//! the paper's proposal), SimDER (deterministic SimRank), EIF (Jaccard on the
//! thresholded graph) and DISTINCT (cosine on the thresholded graph).
//!
//! Run with `cargo run --release --example entity_resolution`.

use uncertain_simrank::datasets::ErGenerator;
use uncertain_simrank::entity_resolution::{
    evaluate_clustering, metrics::average_metrics, ErAlgorithm, ErAlgorithmKind,
};
use uncertain_simrank::prelude::*;

fn main() {
    let dataset = ErGenerator::default().generate();
    println!(
        "record graph: {} records across {} ambiguous names, {} similarity edges\n",
        dataset.num_records(),
        dataset.groups.len(),
        dataset.graph.num_arcs() / 2
    );

    let simrank = SimRankConfig::default().with_samples(300).with_seed(11);
    let algorithms = [
        ErAlgorithm::new(ErAlgorithmKind::SimEr).with_simrank_config(simrank),
        ErAlgorithm::new(ErAlgorithmKind::SimDer).with_simrank_config(simrank),
        ErAlgorithm::new(ErAlgorithmKind::Eif),
        ErAlgorithm::new(ErAlgorithmKind::Distinct),
    ];

    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "algorithm", "precision", "recall", "F1"
    );
    for algorithm in &algorithms {
        let mut per_group = Vec::new();
        for (group_index, _) in dataset.groups.iter().enumerate() {
            let records = dataset.records_of_group(group_index);
            let clustering = algorithm.cluster_group(&dataset.graph, &records);
            per_group.push(evaluate_clustering(&clustering, |a, b| {
                dataset.same_author(a, b)
            }));
        }
        let average = average_metrics(&per_group);
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            algorithm.name(),
            average.precision,
            average.recall,
            average.f1
        );
    }
    println!("\n(the uncertainty-aware SimER should achieve the best F1, mainly through recall)");
}
