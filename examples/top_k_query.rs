//! Top-k similarity search with the single-source estimator.
//!
//! The paper's case studies rank vertex pairs by SimRank (top-20 similar
//! protein pairs, top-5 proteins similar to BUB1).  Answering such queries
//! with a single-pair estimator costs one query per candidate; the
//! single-source estimator answers all |V| targets in one pass by driving the
//! walks of every vertex through one shared functional instantiation per
//! sample.  This example compares both routes on a planted-complex PPI
//! network and checks that they agree on the ranking.
//!
//! Run with `cargo run --release --example top_k_query`.

use std::time::Instant;
use uncertain_simrank::datasets::PpiGenerator;
use uncertain_simrank::prelude::*;
use uncertain_simrank::simrank::{par_top_k_similar_to, SourceMode};

fn main() {
    // A small planted-complex PPI network: proteins inside the same planted
    // complex should rank as most similar.
    let dataset = PpiGenerator {
        num_proteins: 400,
        num_complexes: 40,
        complex_size: (4, 8),
        intra_complex_density: 0.8,
        noise_edges: 600,
        seed: 42,
        ..Default::default()
    }
    .generate();
    let graph = &dataset.graph;
    println!(
        "PPI stand-in: {} proteins, {} interactions",
        graph.num_vertices(),
        graph.num_arcs()
    );

    // Query a protein that belongs to a planted complex, so the final sanity
    // check ("are the nearest neighbours its complex partners?") is meaningful.
    let query: VertexId = dataset
        .within_complex_pairs()
        .first()
        .map(|&(u, _)| u)
        .unwrap_or(0);
    let k = 5;
    let config = SimRankConfig::default().with_samples(500).with_seed(7);

    // Route 1: one single-source pass (sampled source walk).
    let start = Instant::now();
    let mut single_source = SingleSourceEstimator::new(graph, config);
    let result = single_source.query(query);
    let top_single = result.top_k(k);
    let single_time = start.elapsed();

    // Route 2: |V| - 1 independent single-pair queries with SR-SP, in
    // parallel.
    let candidates: Vec<VertexId> = graph.vertices().collect();
    let start = Instant::now();
    let top_pairwise = par_top_k_similar_to(
        || SpeedupEstimator::new(graph, config),
        query,
        &candidates,
        k,
    );
    let pairwise_time = start.elapsed();

    println!("\ntop-{k} proteins most similar to protein {query}:");
    println!(
        "{:<6} {:>10} {:>12}   {:>10} {:>12}",
        "rank", "1-pass", "score", "pairwise", "score"
    );
    for rank in 0..k {
        let a = &top_single[rank];
        let b = &top_pairwise[rank];
        println!(
            "{:<6} {:>10} {:>12.6}   {:>10} {:>12.6}",
            rank + 1,
            a.vertex,
            a.score,
            b.vertex,
            b.score
        );
    }
    println!(
        "\nsingle-source pass: {:.1} ms   pairwise SR-SP: {:.1} ms",
        single_time.as_secs_f64() * 1000.0,
        pairwise_time.as_secs_f64() * 1000.0
    );

    // The exact-source mode scores sampled target positions against the exact
    // transition rows of the query vertex — lower variance at the cost of one
    // exact single-source enumeration.
    let mut exact_source =
        SingleSourceEstimator::new(graph, config).with_source_mode(SourceMode::Exact);
    if let Ok(exact) = exact_source.try_query(query) {
        let agreement = top_single
            .iter()
            .filter(|s| exact.top_k(k).iter().any(|e| e.vertex == s.vertex))
            .count();
        println!("exact-source mode agrees on {agreement}/{k} of the top-{k}");
    } else {
        println!("exact-source mode skipped (walk budget exceeded on this graph)");
    }

    // Sanity: the query protein's own complex should dominate the ranking.
    let in_same_complex = top_single
        .iter()
        .filter(|s| dataset.same_complex(query, s.vertex))
        .count();
    println!("{in_same_complex}/{k} of the top-{k} lie in the query protein's planted complex");
}
