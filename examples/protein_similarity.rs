//! Detecting functionally similar proteins in an uncertain PPI network
//! (Application 1 of the paper's introduction, case study of Section VII-C).
//!
//! A synthetic PPI network with planted protein complexes stands in for the
//! real STRING/MIPS data; the example ranks protein pairs by uncertain
//! SimRank (USIM) and by SimRank on the skeleton (DSIM) and reports how many
//! of the top pairs fall inside a planted complex.
//!
//! Run with `cargo run --release --example protein_similarity`.

use uncertain_simrank::prelude::*;
use uncertain_simrank::simrank::top_k::top_k_pairs;
use uncertain_simrank::simrank::DeterministicSimRank;

struct Deterministic(DeterministicSimRank);

impl SimRankEstimator for Deterministic {
    fn similarity(&mut self, u: VertexId, v: VertexId) -> f64 {
        self.0.similarity(u, v)
    }
    fn name(&self) -> &'static str {
        "DSIM"
    }
}

fn main() {
    let dataset = PpiGenerator {
        num_proteins: 400,
        num_complexes: 50,
        complex_size: (3, 6),
        noise_edges: 600,
        seed: 2024,
        ..Default::default()
    }
    .generate();
    let graph = &dataset.graph;
    println!(
        "PPI network: {} proteins, {} interactions, {} planted complexes\n",
        graph.num_vertices(),
        graph.num_arcs() / 2,
        dataset.complexes.len()
    );

    // Candidate pairs: proteins that share at least one possible neighbor.
    let mut candidates = std::collections::HashSet::new();
    for w in graph.vertices() {
        let neighbors = graph.out_neighbors(w);
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                candidates.insert((a.min(b), a.max(b)));
            }
        }
    }
    println!("{} candidate protein pairs\n", candidates.len());

    let config = SimRankConfig::default().with_samples(300).with_seed(9);
    let mut usim = SpeedupEstimator::new(graph, config);
    let top_usim = top_k_pairs(&mut usim, candidates.iter().copied(), 10);
    let mut dsim = Deterministic(DeterministicSimRank::new(
        graph.skeleton(),
        config.decay,
        config.horizon,
    ));
    let top_dsim = top_k_pairs(&mut dsim, candidates.iter().copied(), 10);

    let mut usim_hits = 0;
    let mut dsim_hits = 0;
    println!("top-10 protein pairs (USIM = uncertainty-aware, DSIM = skeleton only):");
    for rank in 0..10 {
        let u = &top_usim[rank];
        let d = &top_dsim[rank];
        let u_same = dataset.same_complex(u.pair.0, u.pair.1);
        let d_same = dataset.same_complex(d.pair.0, d.pair.1);
        usim_hits += i32::from(u_same);
        dsim_hits += i32::from(d_same);
        println!(
            "  #{:<2} USIM ({:>3},{:>3}) {:.4} same-complex={:<5}  DSIM ({:>3},{:>3}) {:.4} same-complex={}",
            rank + 1,
            u.pair.0,
            u.pair.1,
            u.score,
            u_same,
            d.pair.0,
            d.pair.1,
            d.score,
            d_same
        );
    }
    println!("\nwithin-complex pairs in the top 10: USIM {usim_hits}, DSIM {dsim_hits}");
    println!("(the uncertainty-aware measure should place more true complex pairs at the top)");
}
