//! Quickstart: build an uncertain graph, compute SimRank with every
//! estimator, and inspect the per-step meeting probabilities.
//!
//! Run with `cargo run --release --example quickstart`.

use uncertain_simrank::prelude::*;
use uncertain_simrank::simrank::theorem2_error_bound;

fn main() {
    // The running example of the paper (Fig. 1(a)): five vertices, eight
    // probabilistic arcs.
    let graph = UncertainGraphBuilder::new(5)
        .arc(0, 2, 0.8)
        .arc(0, 3, 0.5)
        .arc(1, 0, 0.8)
        .arc(1, 2, 0.9)
        .arc(2, 0, 0.7)
        .arc(2, 3, 0.6)
        .arc(3, 4, 0.6)
        .arc(3, 1, 0.8)
        .build()
        .expect("valid graph");
    println!(
        "uncertain graph: {} vertices, {} arcs, expected |E| = {:.2}\n",
        graph.num_vertices(),
        graph.num_arcs(),
        graph.expected_num_arcs()
    );

    let config = SimRankConfig::default().with_samples(2000).with_seed(7);
    println!(
        "configuration: c = {}, n = {}, N = {}, l = {} (truncation error <= {:.4})\n",
        config.decay,
        config.horizon,
        config.num_samples,
        config.phase_switch,
        theorem2_error_bound(config.decay, config.horizon),
    );

    // Exact value from the Baseline algorithm.
    let baseline = BaselineEstimator::new(&graph, config);
    let profile = baseline.profile(1, 2);
    println!("meeting probabilities m(k)(v2, v3) for k = 0..=n: ");
    for (k, m) in profile.meeting.iter().enumerate() {
        println!("  m({k}) = {m:.5}");
    }
    println!("exact s(v2, v3) = {:.5}\n", profile.score());

    // The three approximate estimators.
    let mut sampling = SamplingEstimator::new(&graph, config);
    let mut two_phase = TwoPhaseEstimator::new(&graph, config);
    let mut speedup = SpeedupEstimator::new(&graph, config);
    for estimator in [
        &mut sampling as &mut dyn SimRankEstimator,
        &mut two_phase,
        &mut speedup,
    ] {
        println!(
            "{:<10} s(v2, v3) ≈ {:.5}",
            estimator.name(),
            estimator.similarity(1, 2)
        );
    }

    // All-pairs similarities, exactly.
    println!("\nall-pairs SimRank matrix (Baseline):");
    let matrix = baseline.try_similarity_matrix().expect("small graph");
    for u in 0..graph.num_vertices() {
        let row: Vec<String> = (0..graph.num_vertices())
            .map(|v| format!("{:.3}", matrix[(u, v)]))
            .collect();
        println!("  v{}: [{}]", u + 1, row.join(", "));
    }
}
