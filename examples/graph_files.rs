//! Generating, saving, loading and inspecting uncertain-graph files.
//!
//! Shows the two on-disk formats (text edge list and the checksummed binary
//! format), the dataset registry that mirrors Table II of the paper, and the
//! graph statistics used to calibrate the synthetic stand-ins.
//!
//! Run with `cargo run --release --example graph_files`.

use uncertain_simrank::datasets::{ci_registry, RmatGenerator};
use uncertain_simrank::graph::stats::uncertain_graph_stats;
use uncertain_simrank::graph::{binfmt, io};
use uncertain_simrank::prelude::*;

fn main() {
    // The registry lists the paper's datasets (Table II) with laptop-scale
    // stand-in configurations.
    println!("dataset registry (CI scale):");
    for spec in ci_registry() {
        println!(
            "  {:<8} {:>8} vertices  ~{:>9} edges  (published: {} / {})",
            spec.name, spec.num_vertices, spec.num_edges, spec.paper_vertices, spec.paper_edges
        );
    }

    // Generate an R-MAT graph like the scalability experiment (Fig. 12).
    let graph = RmatGenerator {
        scale: 10,
        num_edges: 8_000,
        seed: 1,
        ..Default::default()
    }
    .generate();
    let stats = uncertain_graph_stats(&graph);
    println!(
        "\nR-MAT graph: {} vertices, {} arcs, mean degree {:.2}, mean probability {:.3}",
        stats.topology.num_vertices,
        stats.topology.num_arcs,
        stats.topology.average_out_degree,
        stats.mean_probability
    );

    // Save it in both formats and read it back.
    let dir = std::env::temp_dir();
    let text_path = dir.join("usim_example_graph.tsv");
    let binary_path = dir.join("usim_example_graph.bin");
    io::write_edge_list_file(&graph, &text_path).expect("write text edge list");
    binfmt::write_binary_file(&graph, &binary_path).expect("write binary graph");
    let text_size = std::fs::metadata(&text_path).unwrap().len();
    let binary_size = std::fs::metadata(&binary_path).unwrap().len();
    println!(
        "saved as text ({text_size} bytes) and binary ({binary_size} bytes): {:.1}x size ratio",
        text_size as f64 / binary_size as f64
    );

    let reread = binfmt::read_binary_file(&binary_path).expect("read binary graph");
    assert_eq!(reread.num_arcs(), graph.num_arcs());

    // Corrupting the binary file is detected by its checksum.
    let mut bytes = std::fs::read(&binary_path).unwrap();
    let middle = bytes.len() / 2;
    bytes[middle] ^= 0xff;
    match binfmt::read_binary(bytes.as_slice()) {
        Err(error) => println!("corrupted copy rejected as expected: {error}"),
        Ok(_) => println!("warning: corruption was not detected (flipped a padding byte?)"),
    }

    // A quick similarity query on the re-read graph proves the round trip is
    // usable end to end.
    let config = SimRankConfig::default().with_samples(200).with_seed(3);
    let mut estimator = TwoPhaseEstimator::new(&reread, config);
    let (u, v) = (0, 1);
    println!(
        "s({u}, {v}) on the re-read graph = {:.6}",
        estimator.similarity(u, v)
    );

    std::fs::remove_file(&text_path).ok();
    std::fs::remove_file(&binary_path).ok();
}
