//! Comparing similarity measures on an uncertain co-authorship network
//! (the Fig. 7 / Table III experiment in miniature).
//!
//! Shows, for a handful of author pairs, how the uncertainty-aware SimRank
//! differs from SimRank that ignores probabilities, from Du et al.'s
//! Markov-assumption SimRank, and from the (expected) Jaccard similarity.
//!
//! Run with `cargo run --release --example measure_comparison`.

use uncertain_simrank::prelude::*;
use uncertain_simrank::similarity::{expected_jaccard, jaccard, NeighborhoodMode};
use uncertain_simrank::simrank::{deterministic::simrank_single_pair, DuEtAlEstimator};

fn main() {
    let graph = CoauthorGenerator {
        num_authors: 300,
        edges_per_author: 3,
        seed: 77,
        ..Default::default()
    }
    .generate();
    println!(
        "co-authorship network: {} authors, {} weighted collaborations\n",
        graph.num_vertices(),
        graph.num_arcs() / 2
    );

    let config = SimRankConfig::default();
    let baseline = BaselineEstimator::new(&graph, config);
    let mut du_et_al = DuEtAlEstimator::new(&graph, config);
    let skeleton = graph.skeleton().clone();

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "pair", "SimRank-I", "SimRank-II", "SimRank-III", "Jaccard-I", "Jaccard-II"
    );
    let pairs = [
        (10u32, 11u32),
        (20, 25),
        (40, 80),
        (5, 6),
        (100, 101),
        (150, 151),
    ];
    for (u, v) in pairs {
        let simrank_uncertain = baseline.try_similarity(u, v).unwrap();
        let simrank_skeleton = simrank_single_pair(&skeleton, u, v, config.decay, config.horizon);
        let simrank_du = du_et_al.similarity(u, v);
        let jaccard_expected = expected_jaccard(&graph, u, v, NeighborhoodMode::In);
        let jaccard_skeleton = jaccard(&skeleton, u, v, NeighborhoodMode::In);
        println!(
            "{:>10} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            format!("({u},{v})"),
            simrank_uncertain,
            simrank_skeleton,
            simrank_du,
            jaccard_expected,
            jaccard_skeleton
        );
    }
    println!(
        "\nSimRank-I is the paper's measure; SimRank-II ignores uncertainty; SimRank-III \
         assumes W(k) = W(1)^k; the Jaccard columns are zero whenever the authors share \
         no (possible) co-author — the limitation SimRank is designed to overcome."
    );
}
