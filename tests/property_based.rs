//! Property-based tests (proptest) over randomly generated uncertain graphs.
//!
//! These check the structural invariants the paper's theory guarantees —
//! probabilities stay probabilities, transition matrices stay sub-stochastic,
//! SimRank stays symmetric and bounded, the exact machinery agrees with
//! brute-force possible-world enumeration on tiny graphs — for arbitrary
//! (small) random inputs rather than hand-picked examples.

use proptest::prelude::*;
use uncertain_simrank::graph::possible_world::{enumerate_worlds, expectation_over_worlds};
use uncertain_simrank::matrix::{BitVec, SparseVector};
use uncertain_simrank::prelude::*;
use uncertain_simrank::random_walk::transpr::{transition_matrices, TransPrOptions};
use uncertain_simrank::random_walk::walk::Walk;
use uncertain_simrank::random_walk::walkpr::walk_probability;
use uncertain_simrank::simrank::{combine_meeting_probabilities, BaselineEstimator};

/// Strategy: a small uncertain graph with up to `max_vertices` vertices and
/// up to `max_arcs` random arcs (duplicates collapsed by keeping the largest
/// probability).
fn small_uncertain_graph(
    max_vertices: u32,
    max_arcs: usize,
) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            let arcs = proptest::collection::vec((0..n, 0..n, 0.05f64..1.0f64), 1..=max_arcs);
            (Just(n), arcs)
        })
        .prop_map(|(n, arcs)| {
            UncertainGraphBuilder::new(n as usize)
                .duplicate_policy(uncertain_simrank::graph::DuplicatePolicy::KeepMaxProbability)
                .arcs(arcs)
                .build()
                .expect("strategy produces valid arcs")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Walk probabilities computed by WalkPr equal the expectation of the
    /// deterministic walk probability over all possible worlds.
    #[test]
    fn walkpr_matches_possible_world_expectation(
        graph in small_uncertain_graph(5, 8),
        steps in proptest::collection::vec(0u32..5u32, 1..4),
    ) {
        // Build a walk by following possible arcs greedily from a random seed
        // sequence; if at some point the arc does not exist the walk is cut.
        let mut vertices = vec![steps[0] % graph.num_vertices() as u32];
        for &step in &steps[1..] {
            let current = *vertices.last().unwrap();
            let neighbors = graph.out_neighbors(current);
            if neighbors.is_empty() {
                break;
            }
            vertices.push(neighbors[step as usize % neighbors.len()]);
        }
        let walk = Walk::from_vertices(vertices);
        let exact = walk_probability(&graph, &walk);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&exact));
        let brute = expectation_over_worlds(&graph, |world| {
            walk.vertices()
                .windows(2)
                .map(|pair| world.transition_probability(pair[0], pair[1]))
                .product::<f64>()
        });
        prop_assert!((exact - brute).abs() < 1e-9, "exact {exact} vs brute {brute}");
    }

    /// Possible-world probabilities always sum to 1.
    #[test]
    fn possible_world_probabilities_sum_to_one(graph in small_uncertain_graph(4, 6)) {
        let total: f64 = enumerate_worlds(&graph).iter().map(|w| w.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Every k-step transition matrix is entry-wise a probability and
    /// row-wise sub-stochastic, with survival non-increasing in k.
    #[test]
    fn transition_matrices_are_substochastic(graph in small_uncertain_graph(6, 10)) {
        let matrices = transition_matrices(&graph, 4, &TransPrOptions::default()).unwrap();
        let mut previous = vec![1.0; graph.num_vertices()];
        for k in 1..=4 {
            let sums = matrices.step(k).row_sums();
            for (row, (&sum, &prev)) in sums.iter().zip(&previous).enumerate() {
                prop_assert!(sum <= 1.0 + 1e-9, "row {row} of W({k}) sums to {sum}");
                prop_assert!(sum <= prev + 1e-9, "survival increased at row {row}, k = {k}");
                for v in 0..graph.num_vertices() {
                    let entry = matrices.step(k)[(row, v)];
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&entry));
                }
            }
            previous = sums;
        }
    }

    /// SimRank is symmetric, bounded by [0, 1], and truncation respects the
    /// Theorem 2 error bound between consecutive horizons.
    #[test]
    fn simrank_is_symmetric_and_bounded(graph in small_uncertain_graph(6, 10)) {
        let config = SimRankConfig::default().with_horizon(4);
        let baseline = BaselineEstimator::new(&graph, config);
        for u in graph.vertices() {
            for v in graph.vertices() {
                let s_uv = baseline.try_similarity(u, v).unwrap();
                let s_vu = baseline.try_similarity(v, u).unwrap();
                prop_assert!((s_uv - s_vu).abs() < 1e-9);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&s_uv));
            }
        }
        // Adjacent horizons differ by at most c^{n+1} (both sides of Thm. 2).
        let profile = baseline.profile(0, 1.min(graph.num_vertices() as u32 - 1));
        for n in 2..=4usize {
            let gap = (profile.score_at_horizon(n) - profile.score_at_horizon(n - 1)).abs();
            prop_assert!(gap <= config.decay.powi(n as i32) + 1e-9);
        }
    }

    /// The combination of meeting probabilities is monotone and bounded.
    #[test]
    fn combination_is_bounded_by_extremes(
        meeting in proptest::collection::vec(0.0f64..=1.0, 2..8),
        decay in 0.05f64..0.95,
    ) {
        let score = combine_meeting_probabilities(&meeting, decay);
        prop_assert!(score >= -1e-12);
        prop_assert!(score <= 1.0 + 1e-12);
    }

    /// Sparse vector algebra agrees with dense arithmetic.
    #[test]
    fn sparse_vector_matches_dense(
        a in proptest::collection::vec(-5.0f64..5.0, 1..12),
        b in proptest::collection::vec(-5.0f64..5.0, 1..12),
    ) {
        let len = a.len().max(b.len());
        let mut dense_a = a.clone();
        dense_a.resize(len, 0.0);
        let mut dense_b = b.clone();
        dense_b.resize(len, 0.0);
        let sparse_a = SparseVector::from_dense(&dense_a);
        let sparse_b = SparseVector::from_dense(&dense_b);
        let dense_dot: f64 = dense_a.iter().zip(&dense_b).map(|(x, y)| x * y).sum();
        prop_assert!((sparse_a.dot(&sparse_b) - dense_dot).abs() < 1e-9);

        let mut accumulated = sparse_a.clone();
        accumulated.add_scaled(&sparse_b, 0.5);
        for i in 0..len {
            let expected = dense_a[i] + 0.5 * dense_b[i];
            prop_assert!((accumulated.get(i as u32) - expected).abs() < 1e-9);
        }
    }

    /// Bit-vector algebra obeys the Boolean-lattice laws the SR-SP update
    /// relies on.
    #[test]
    fn bitvec_laws(bits_a in proptest::collection::vec(any::<bool>(), 1..200),
                   bits_b in proptest::collection::vec(any::<bool>(), 1..200)) {
        let len = bits_a.len().min(bits_b.len());
        let a = BitVec::from_bools(bits_a[..len].iter().copied());
        let b = BitVec::from_bools(bits_b[..len].iter().copied());
        // Popcount of AND equals the fused and_count.
        prop_assert_eq!(a.and(&b).count_ones(), a.and_count(&b));
        // Idempotence and commutativity.
        prop_assert_eq!(a.and(&a), a.clone());
        prop_assert_eq!(a.or(&a), a.clone());
        prop_assert_eq!(a.and(&b), b.and(&a));
        prop_assert_eq!(a.or(&b), b.or(&a));
        // |A| + |B| = |A AND B| + |A OR B|.
        prop_assert_eq!(
            a.count_ones() + b.count_ones(),
            a.and_count(&b) + a.or(&b).count_ones()
        );
        // The fused update x |= a & b equals the explicit form.
        let mut fused = BitVec::zeros(len);
        fused.or_and_assign(&a, &b);
        prop_assert_eq!(fused, a.and(&b));
    }

    /// Transposing twice is the identity and preserves arc probabilities.
    #[test]
    fn transpose_is_an_involution(graph in small_uncertain_graph(8, 16)) {
        let transposed = graph.transpose();
        prop_assert_eq!(transposed.num_arcs(), graph.num_arcs());
        prop_assert_eq!(&transposed.transpose(), &graph);
        for arc in graph.arcs() {
            let p = transposed.arc_probability(arc.target, arc.source).unwrap();
            prop_assert!((p - arc.probability).abs() < 1e-12);
        }
    }

    /// Edge-list round trip preserves the graph.
    #[test]
    fn edge_list_round_trip(graph in small_uncertain_graph(8, 16)) {
        let mut buffer = Vec::new();
        uncertain_simrank::graph::io::write_edge_list(&graph, &mut buffer).unwrap();
        let options = uncertain_simrank::graph::io::ReadOptions {
            assume_compact: true,
            ..Default::default()
        };
        let back = uncertain_simrank::graph::io::read_edge_list(buffer.as_slice(), &options).unwrap();
        prop_assert_eq!(back.graph.num_arcs(), graph.num_arcs());
        for arc in graph.arcs() {
            let p = back.graph.arc_probability(arc.source, arc.target).unwrap();
            prop_assert!((p - arc.probability).abs() < 1e-12);
        }
    }
}
