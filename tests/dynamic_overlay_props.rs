//! Property-based tests for the dynamic-graph subsystem: a [`DeltaOverlay`]
//! fed an arbitrary valid update stream must be vertex-for-vertex identical
//! (both directions, neighbors and probabilities, before *and* after
//! compaction) to a [`CsrGraph`] rebuilt from scratch on the mutated graph;
//! and the batch [`QueryEngine`] must keep its determinism contract after
//! updates — batch == sequential bit-for-bit, 1 thread == 5 threads, and a
//! mutated engine == a fresh engine on the mutated graph.

use proptest::prelude::*;
use rayon::ThreadPoolBuilder;
use std::collections::BTreeMap;
use uncertain_simrank::graph::{
    CompactionPolicy, CsrGraph, DeltaOverlay, DuplicatePolicy, GraphUpdate, UncertainGraph,
    VertexId,
};
use uncertain_simrank::prelude::*;
use uncertain_simrank::simrank::{QueryEngine, QueryError};

/// Strategy: a small uncertain graph (duplicates keep the max probability).
fn small_uncertain_graph(
    max_vertices: u32,
    max_arcs: usize,
) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            let arcs = proptest::collection::vec((0..n, 0..n, 0.05f64..1.0f64), 1..=max_arcs);
            (Just(n), arcs)
        })
        .prop_map(|(n, arcs)| {
            UncertainGraphBuilder::new(n as usize)
                .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
                .arcs(arcs)
                .build()
                .expect("strategy produces valid arcs")
        })
}

/// Abstract update op: `(u, v, probability, kind)`.  Translated against the
/// current arc set so that every generated [`GraphUpdate`] is valid: absent
/// arcs are inserted; present arcs are deleted (kind 0) or re-weighted.
type AbstractOp = (u32, u32, f64, u8);

/// Translates abstract ops into a valid update stream and the model arc
/// set it produces.
fn realize_updates(
    graph: &UncertainGraph,
    ops: &[AbstractOp],
) -> (Vec<GraphUpdate>, BTreeMap<(VertexId, VertexId), f64>) {
    let n = graph.num_vertices() as u32;
    let mut model: BTreeMap<(VertexId, VertexId), f64> = graph
        .arcs()
        .map(|a| ((a.source, a.target), a.probability))
        .collect();
    let mut updates = Vec::with_capacity(ops.len());
    for &(u, v, p, kind) in ops {
        let (source, target) = (u % n, v % n);
        match model.entry((source, target)) {
            std::collections::btree_map::Entry::Occupied(entry) => {
                if kind == 0 {
                    entry.remove();
                    updates.push(GraphUpdate::DeleteArc { source, target });
                } else {
                    *entry.into_mut() = p;
                    updates.push(GraphUpdate::SetProbability {
                        source,
                        target,
                        probability: p,
                    });
                }
            }
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(p);
                updates.push(GraphUpdate::InsertArc {
                    source,
                    target,
                    probability: p,
                });
            }
        }
    }
    (updates, model)
}

fn model_graph(num_vertices: usize, model: &BTreeMap<(VertexId, VertexId), f64>) -> UncertainGraph {
    UncertainGraph::from_arcs(num_vertices, model.iter().map(|(&(u, v), &p)| (u, v, p)))
        .expect("model arcs are valid")
}

/// Strategy: a graph plus a stream of abstract ops over its vertices.
fn graph_and_ops(
    max_vertices: u32,
    max_arcs: usize,
    max_ops: usize,
) -> impl Strategy<Value = (UncertainGraph, Vec<AbstractOp>)> {
    small_uncertain_graph(max_vertices, max_arcs).prop_flat_map(move |g| {
        let ops = proptest::collection::vec(
            (0u32..1000, 0u32..1000, 0.05f64..1.0f64, 0u8..3),
            0..=max_ops,
        );
        (Just(g), ops)
    })
}

/// Strategy: a list of query pairs over `n` vertices.
fn pairs_over(n: u32, max_pairs: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    proptest::collection::vec((0..n, 0..n), 1..=max_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DeltaOverlay under an arbitrary valid update stream is
    /// vertex-for-vertex identical to a CsrGraph rebuilt from the mutated
    /// graph — both directions, neighbors and probabilities — and stays so
    /// after compaction folds the deltas into a fresh CSR.
    #[test]
    fn overlay_equals_rebuild_vertex_for_vertex(
        input in graph_and_ops(10, 30, 40),
    ) {
        let (graph, ops) = input;
        let (updates, model) = realize_updates(&graph, &ops);
        let expected = model_graph(graph.num_vertices(), &model);
        let rebuilt = CsrGraph::from_uncertain(&expected);

        let mut overlay = DeltaOverlay::with_policy(
            CsrGraph::from_uncertain(&graph),
            CompactionPolicy::never(),
        );
        overlay.apply_all(&updates).expect("realized updates are valid");
        prop_assert_eq!(overlay.num_arcs(), expected.num_arcs());

        // Before compaction: reads merge base + patched rows.
        for v in 0..graph.num_vertices() as VertexId {
            prop_assert_eq!(overlay.forward().neighbors(v), rebuilt.forward().neighbors(v));
            prop_assert_eq!(
                overlay.forward().probabilities(v),
                rebuilt.forward().probabilities(v)
            );
            prop_assert_eq!(overlay.reverse().neighbors(v), rebuilt.reverse().neighbors(v));
            prop_assert_eq!(
                overlay.reverse().probabilities(v),
                rebuilt.reverse().probabilities(v)
            );
        }
        prop_assert_eq!(overlay.to_uncertain(), expected.clone());

        // After compaction: the fresh CSR base *is* the rebuild.
        overlay.compact();
        prop_assert_eq!(overlay.patched_vertices(), 0);
        prop_assert_eq!(overlay.base(), &rebuilt);
    }

    /// One update stream applied in arbitrary batch splits (including
    /// threshold-triggered compactions along the way) converges to the same
    /// graph as applying it in one atomic batch.
    #[test]
    fn batch_splits_and_compaction_points_are_invisible(
        input in graph_and_ops(8, 20, 30),
        split in 1usize..7,
        min_ops in 1usize..16,
    ) {
        let (graph, ops) = input;
        let (updates, model) = realize_updates(&graph, &ops);
        let expected = model_graph(graph.num_vertices(), &model);

        let mut one_shot = DeltaOverlay::with_policy(
            CsrGraph::from_uncertain(&graph),
            CompactionPolicy::never(),
        );
        one_shot.apply_all(&updates).expect("valid");

        let mut chunked = DeltaOverlay::with_policy(
            CsrGraph::from_uncertain(&graph),
            CompactionPolicy { min_ops, ops_fraction: 0.0 },
        );
        for chunk in updates.chunks(split) {
            chunked.apply_all(chunk).expect("valid");
        }
        prop_assert_eq!(one_shot.to_uncertain(), expected.clone());
        prop_assert_eq!(chunked.to_uncertain(), expected);
    }

    /// After updates the engine keeps every determinism contract: batch ==
    /// sequential bit-for-bit, 1 thread == 5 threads, and the mutated
    /// engine == a fresh engine built on the mutated graph.
    #[test]
    fn post_update_batch_determinism_holds_at_1_and_5_threads(
        input in graph_and_ops(8, 20, 24)
            .prop_flat_map(|(g, ops)| {
                let n = g.num_vertices() as u32;
                (Just(g), Just(ops), pairs_over(n, 12))
            }),
        seed in 0u64..1000,
    ) {
        let (graph, ops, pairs) = input;
        let (updates, model) = realize_updates(&graph, &ops);
        let config = SimRankConfig::default().with_samples(30).with_seed(seed);
        let mut engine = QueryEngine::new(&graph, config);
        engine.apply_updates(&updates).expect("realized updates are valid");

        let batch = engine.batch_similarities(&pairs).unwrap();
        let sequential: Vec<f64> =
            pairs.iter().map(|&(u, v)| engine.similarity(u, v)).collect();
        prop_assert_eq!(&batch, &sequential, "batch == sequential after updates");

        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let many = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let a = single.install(|| engine.batch_similarities(&pairs).unwrap());
        let b = many.install(|| engine.batch_similarities(&pairs).unwrap());
        prop_assert_eq!(&a, &b, "1 thread == 5 threads after updates");
        prop_assert_eq!(&a, &batch);

        // The live engine is indistinguishable from a from-scratch rebuild.
        let fresh = QueryEngine::new(
            &model_graph(graph.num_vertices(), &model),
            config,
        );
        prop_assert_eq!(&batch, &fresh.batch_similarities(&pairs).unwrap());
    }

    /// Out-of-range ids anywhere in a batch are a typed error, never a
    /// panic, and valid batches on the same engine still succeed.
    #[test]
    fn out_of_range_batch_ids_are_typed_errors(
        graph in small_uncertain_graph(8, 20),
        offset in 0u32..1000,
    ) {
        let n = graph.num_vertices();
        let bad = n as u32 + offset;
        let engine = QueryEngine::new(
            &graph,
            SimRankConfig::default().with_samples(10).with_seed(1),
        );
        let expected = QueryError::VertexOutOfRange { vertex: bad, num_vertices: n };
        prop_assert_eq!(
            engine.batch_similarities(&[(0, 0), (bad, 0)]).unwrap_err(),
            expected
        );
        prop_assert_eq!(engine.batch_profile(&[(0, bad)]).unwrap_err(), expected);
        prop_assert_eq!(engine.batch_top_k(&[(bad, 1)], 2).unwrap_err(), expected);
        prop_assert_eq!(
            engine.batch_top_k_similar_to(0, &[1 % n as u32, bad], 2).unwrap_err(),
            expected
        );
        prop_assert_eq!(engine.try_similarity(bad, 0).unwrap_err(), expected);
        // The engine is still healthy for in-range queries.
        prop_assert!(engine.batch_similarities(&[(0, 1 % n as u32)]).is_ok());
    }
}
