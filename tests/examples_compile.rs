//! Smoke test: every example in `examples/` must keep compiling.
//!
//! CI runs `cargo build --examples` explicitly; this test keeps the same
//! guarantee in plain `cargo test` runs by invoking the already-resolved
//! cargo on the already-built dependency graph (cheap after the first
//! build, and fully offline).

use std::process::Command;

#[test]
fn all_examples_compile() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let examples: Vec<String> = std::fs::read_dir(format!("{manifest_dir}/examples"))
        .expect("examples directory exists")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    assert!(
        !examples.is_empty(),
        "the examples directory should contain at least one example"
    );

    let output = Command::new(env!("CARGO"))
        .args(["build", "--examples", "--offline"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
