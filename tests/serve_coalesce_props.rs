//! Property-based tests for the coalesced serving hot path: a
//! [`RequestHandler`] with request coalescing enabled, fed an arbitrary
//! interleaving of query frames from several threads, must answer every
//! frame **byte-identical** to an uncoalesced handler walking the same
//! frames sequentially — across random window/cap settings and update
//! rounds — and the serving metrics (latency histogram, per-kind request
//! counters, coalescer batching counters) must stay coherent with the
//! frames actually served.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use uncertain_simrank::graph::{DuplicatePolicy, GraphUpdate, UncertainGraph, VertexId};
use uncertain_simrank::prelude::*;
use uncertain_simrank::server::{Frame, RequestKind, DEFAULT_MAX_BATCH};

/// Strategy: a small uncertain graph (duplicates keep the max probability).
fn small_uncertain_graph(
    max_vertices: u32,
    max_arcs: usize,
) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            let arcs = proptest::collection::vec((0..n, 0..n, 0.05f64..1.0f64), 1..=max_arcs);
            (Just(n), arcs)
        })
        .prop_map(|(n, arcs)| {
            UncertainGraphBuilder::new(n as usize)
                .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
                .arcs(arcs)
                .build()
                .expect("strategy produces valid arcs")
        })
}

/// Abstract query frame `(u, v, selector)`: the selector picks the request
/// type, the vertices are taken modulo the graph size so every frame is a
/// valid, coalescable request.
type AbstractFrame = (u32, u32, u8);

fn render_frame(n: u32, &(u, v, sel): &AbstractFrame) -> String {
    let (u, v) = (u % n, v % n);
    match sel % 4 {
        0 => format!(r#"{{"type":"similarity","source":{u},"target":{v}}}"#),
        1 => format!(r#"{{"type":"profile","source":{u},"target":{v}}}"#),
        2 => format!(r#"{{"type":"top_k","source":{u},"k":{}}}"#, 1 + v % 3),
        _ => format!(r#"{{"type":"batch","pairs":[[{u},{v}],[{v},{u}],[{u},{u}]]}}"#),
    }
}

/// Abstract update op `(u, v, probability, kind)`, realised against the
/// live arc set so every generated update frame is valid (same scheme as
/// `cache_props.rs`).
type AbstractOp = (u32, u32, f64, u8);

fn realize_round(
    num_vertices: u32,
    model: &mut BTreeMap<(VertexId, VertexId), f64>,
    ops: &[AbstractOp],
) -> Vec<GraphUpdate> {
    let mut updates = Vec::with_capacity(ops.len());
    for &(u, v, p, kind) in ops {
        let (source, target) = (u % num_vertices, v % num_vertices);
        match model.entry((source, target)) {
            std::collections::btree_map::Entry::Occupied(entry) => {
                if kind == 0 {
                    entry.remove();
                    updates.push(GraphUpdate::DeleteArc { source, target });
                } else {
                    *entry.into_mut() = p;
                    updates.push(GraphUpdate::SetProbability {
                        source,
                        target,
                        probability: p,
                    });
                }
            }
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(p);
                updates.push(GraphUpdate::InsertArc {
                    source,
                    target,
                    probability: p,
                });
            }
        }
    }
    updates
}

/// Renders an update round as one wire `update` frame (both handlers see
/// the identical bytes, like a real client would send).
fn render_update(updates: &[GraphUpdate]) -> String {
    let items: Vec<String> = updates
        .iter()
        .map(|update| match *update {
            GraphUpdate::InsertArc {
                source,
                target,
                probability,
            } => format!(
                r#"{{"op":"insert","source":{source},"target":{target},"probability":{probability}}}"#
            ),
            GraphUpdate::DeleteArc { source, target } => {
                format!(r#"{{"op":"delete","source":{source},"target":{target}}}"#)
            }
            GraphUpdate::SetProbability {
                source,
                target,
                probability,
            } => format!(
                r#"{{"op":"set","source":{source},"target":{target},"probability":{probability}}}"#
            ),
        })
        .collect();
    format!(r#"{{"type":"update","updates":[{}]}}"#, items.join(","))
}

/// Two handlers over the *same* graph, seed and identity label table: one
/// plain, one coalescing with the given window/cap.
fn handler_pair(
    graph: &UncertainGraph,
    seed: u64,
    window_us: u64,
    cap: usize,
) -> (RequestHandler, RequestHandler) {
    let config = SimRankConfig::default().with_samples(25).with_seed(seed);
    let labels: Vec<u64> = (0..graph.num_vertices() as u64).collect();
    let plain = RequestHandler::new(
        SharedQueryEngine::new(graph, config),
        labels.clone(),
        DEFAULT_MAX_BATCH,
    );
    let coalesced = RequestHandler::new(
        SharedQueryEngine::new(graph, config),
        labels,
        DEFAULT_MAX_BATCH,
    )
    .with_coalescing(CoalesceOptions {
        window: Duration::from_micros(window_us),
        cap,
    });
    (plain, coalesced)
}

/// Extracts the integer right after `"key":` in `section` (the stats frame
/// is line-delimited JSON; substring extraction keeps the test free of a
/// parser and doubles as a wire-format pin).
fn field_u64(section: &str, key: &str) -> u64 {
    let pattern = format!("\"{key}\":");
    let start = section
        .find(&pattern)
        .unwrap_or_else(|| panic!("{pattern} missing in {section}"))
        + pattern.len();
    let digits: String = section[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("{pattern} not an integer in {section}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The heart of the tentpole: whatever the window/cap settings and
    /// however the threads interleave, every coalesced answer equals the
    /// sequential uncoalesced answer byte for byte — before and after an
    /// update round — and the coalescer's counters account for exactly the
    /// coalescable frames that were submitted.
    #[test]
    fn coalesced_interleavings_are_byte_identical_to_sequential(
        graph in small_uncertain_graph(8, 20),
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec((0u32..1000, 0u32..1000, 0u8..8), 1..=10),
                proptest::collection::vec((0u32..1000, 0u32..1000, 0.05f64..1.0f64, 0u8..3), 0..=6),
            ),
            1..=3,
        ),
        seed in 0u64..1000,
        window_us in 50u64..1500,
        cap in 1usize..6,
    ) {
        let n = graph.num_vertices() as u32;
        let (plain, coalesced) = handler_pair(&graph, seed, window_us, cap);
        let mut model: BTreeMap<(VertexId, VertexId), f64> = graph
            .arcs()
            .map(|a| ((a.source, a.target), a.probability))
            .collect();

        let mut coalescable = 0u64;
        let mut update_frames = 0u64;
        for (abstract_frames, ops) in &rounds {
            let frames: Vec<String> =
                abstract_frames.iter().map(|f| render_frame(n, f)).collect();
            coalescable += frames.len() as u64;
            let expected: Vec<Frame> = frames
                .iter()
                .map(|frame| plain.handle_line(frame).unwrap())
                .collect();

            // Up to three threads submit disjoint slices of the round
            // concurrently; whichever thread leads whichever batch, every
            // answer must equal the sequential reference bit for bit.
            let chunk = frames.len().div_ceil(3);
            std::thread::scope(|scope| {
                let handles: Vec<_> = frames
                    .chunks(chunk)
                    .map(|slice| {
                        let coalesced = &coalesced;
                        scope.spawn(move || {
                            slice
                                .iter()
                                .map(|frame| coalesced.handle_line(frame).unwrap())
                                .collect::<Vec<Frame>>()
                        })
                    })
                    .collect();
                let got: Vec<Frame> = handles
                    .into_iter()
                    .flat_map(|handle| handle.join().unwrap())
                    .collect();
                for ((frame, want), have) in frames.iter().zip(&expected).zip(&got) {
                    assert_eq!(have, want, "coalesced != sequential for {frame}");
                }
            });

            // One wire update frame advances both handlers in lockstep
            // (updates bypass the coalescer but must stay byte-identical
            // too, and every later answer reflects the new epoch).
            let updates = realize_round(n, &mut model, ops);
            if !updates.is_empty() {
                let update_frame = render_update(&updates);
                update_frames += 1;
                prop_assert_eq!(
                    coalesced.handle_line(&update_frame).unwrap(),
                    plain.handle_line(&update_frame).unwrap(),
                    "update frame diverged: {}",
                    update_frame
                );
            }
        }

        // Counter coherence: the coalescer saw exactly the coalescable
        // frames, every flush was either a window or a cap flush, and the
        // per-kind counters account for every frame the handler dispatched.
        let snapshot = coalesced.metrics().coalescer_snapshot();
        prop_assert_eq!(snapshot.requests, coalescable);
        prop_assert_eq!(
            snapshot.window_flushes + snapshot.cap_flushes,
            snapshot.batches
        );
        // A leader drains *everything* pending when it wakes, so a batch
        // may exceed `cap` under a race — only the 1..=requests bound and
        // the flush accounting are invariants.
        prop_assert!(snapshot.batches >= 1 && snapshot.batches <= coalescable);
        let dispatched: u64 = RequestKind::ALL
            .iter()
            .map(|&kind| coalesced.metrics().requests_of(kind))
            .sum();
        prop_assert_eq!(dispatched, coalescable + update_frames);
    }

    /// Metrics coherence over real TCP: a coalesced server asked an
    /// arbitrary mix of valid, malformed and unknown-vertex frames reports
    /// a latency histogram that counted exactly the served frames, and a
    /// `stats` frame whose latency/coalescer sections agree with it.
    #[test]
    fn latency_and_coalescer_counters_cohere_over_tcp(
        graph in small_uncertain_graph(8, 20),
        abstract_frames in proptest::collection::vec((0u32..1000, 0u32..1000, 0u8..6), 1..=14),
        seed in 0u64..1000,
        window_us in 50u64..1500,
        cap in 1usize..6,
    ) {
        let n = graph.num_vertices() as u32;
        let (_, coalesced) = handler_pair(&graph, seed, window_us, cap);
        let metrics = Arc::clone(coalesced.metrics());
        let server = Server::bind(
            "127.0.0.1:0",
            coalesced,
            ServerOptions {
                workers: 2,
                queue_depth: 4,
                max_connections: Some(1),
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().unwrap());

        let conn = TcpStream::connect(addr).unwrap();
        conn.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut conn = conn;
        let mut response = String::new();
        let mut ask = |line: &str| -> String {
            writeln!(conn, "{line}").unwrap();
            response.clear();
            reader.read_line(&mut response).unwrap();
            response.trim_end().to_string()
        };

        // Selectors 0..4 render valid coalescable frames; 4 is malformed
        // JSON, 5 an unknown vertex — both answered with typed errors that
        // never enter the coalescer.
        let mut coalescable = 0u64;
        for frame in &abstract_frames {
            let line = match frame.2 {
                0..=3 => {
                    coalescable += 1;
                    render_frame(n, frame)
                }
                4 => "{oops".to_string(),
                _ => format!(r#"{{"type":"similarity","source":9999,"target":{}}}"#, frame.0 % n),
            };
            let answer = ask(&line);
            prop_assert!(!answer.is_empty(), "no response for {}", line);
        }
        let stats_line = ask(r#"{"type":"stats"}"#);
        drop((conn, reader));
        let served = runner.join().unwrap();

        // Every served frame — including each error frame and the stats
        // frame itself — was timed exactly once.
        let sent = abstract_frames.len() as u64 + 1;
        prop_assert_eq!(served.frames, sent);
        prop_assert_eq!(metrics.latency().count(), sent);
        // The stats frame was built before its own flush was timed, so the
        // section reports one sample fewer.
        let latency = &stats_line[stats_line.find("\"latency\":").unwrap()..];
        prop_assert_eq!(field_u64(latency, "count"), sent - 1);
        let coalescer = &stats_line[stats_line.find("\"coalescer\":").unwrap()..];
        prop_assert_eq!(field_u64(coalescer, "window_us"), window_us);
        prop_assert_eq!(field_u64(coalescer, "cap"), cap as u64);
        prop_assert_eq!(field_u64(coalescer, "requests"), coalescable);
        prop_assert_eq!(
            field_u64(coalescer, "window_flushes") + field_u64(coalescer, "cap_flushes"),
            field_u64(coalescer, "batches")
        );
        // The per-kind counters in the section sum to every dispatched
        // frame (the stats frame counts itself before rendering).
        let requests = &stats_line[stats_line.find("\"requests\":").unwrap()..];
        let dispatched: u64 = RequestKind::ALL
            .iter()
            .map(|&kind| field_u64(requests, kind.as_str()))
            .sum();
        prop_assert_eq!(dispatched, sent);
        prop_assert_eq!(
            dispatched,
            RequestKind::ALL
                .iter()
                .map(|&kind| metrics.requests_of(kind))
                .sum::<u64>()
        );
    }
}
