//! End-to-end integration tests spanning the workspace crates:
//! dataset generation → SimRank estimation → ranking / entity resolution.

use uncertain_simrank::datasets::{CoauthorGenerator, ErGenerator, PpiGenerator};
use uncertain_simrank::entity_resolution::{evaluate_clustering, ErAlgorithm, ErAlgorithmKind};
use uncertain_simrank::prelude::*;
use uncertain_simrank::similarity::{expected_jaccard, NeighborhoodMode};
use uncertain_simrank::simrank::{
    deterministic::simrank_all_pairs, top_k::top_k_pairs, BaselineEstimator, DuEtAlEstimator,
};

/// The paper's Fig. 1(a) running example.
fn fig1_graph() -> UncertainGraph {
    UncertainGraphBuilder::new(5)
        .arc(0, 2, 0.8)
        .arc(0, 3, 0.5)
        .arc(1, 0, 0.8)
        .arc(1, 2, 0.9)
        .arc(2, 0, 0.7)
        .arc(2, 3, 0.6)
        .arc(3, 4, 0.6)
        .arc(3, 1, 0.8)
        .build()
        .unwrap()
}

#[test]
fn all_estimators_agree_on_the_running_example() {
    let graph = fig1_graph();
    let config = SimRankConfig::default().with_samples(5000).with_seed(99);
    let baseline = BaselineEstimator::new(&graph, config);
    let mut sampling = SamplingEstimator::new(&graph, config);
    let mut two_phase = TwoPhaseEstimator::new(&graph, config);
    let mut speedup = SpeedupEstimator::new(&graph, config);
    for u in graph.vertices() {
        for v in graph.vertices() {
            let exact = baseline.try_similarity(u, v).unwrap();
            for (name, estimate) in [
                ("Sampling", sampling.similarity(u, v)),
                ("SR-TS", two_phase.similarity(u, v)),
                ("SR-SP", speedup.similarity(u, v)),
            ] {
                assert!(
                    (exact - estimate).abs() < 0.05,
                    "{name} deviates on ({u},{v}): exact {exact}, estimate {estimate}"
                );
            }
        }
    }
}

#[test]
fn theorem_3_holds_end_to_end_on_a_generated_dataset() {
    // A generated co-authorship graph with all probabilities forced to 1 must
    // reproduce classic SimRank on its skeleton, through the whole pipeline.
    let graph = CoauthorGenerator {
        num_authors: 60,
        edges_per_author: 2,
        seed: 5,
        ..Default::default()
    }
    .generate()
    .certain();
    let config = SimRankConfig::default().with_horizon(4);
    let baseline = BaselineEstimator::new(&graph, config);
    let classic = simrank_all_pairs(graph.skeleton(), config.decay, config.horizon);
    for u in (0..60u32).step_by(7) {
        for v in (0..60u32).step_by(11) {
            let uncertain = baseline.try_similarity(u, v).unwrap();
            let deterministic = classic[(u as usize, v as usize)];
            assert!(
                (uncertain - deterministic).abs() < 1e-9,
                "pair ({u},{v}): {uncertain} vs {deterministic}"
            );
        }
    }
}

#[test]
fn uncertain_simrank_ranks_planted_complex_pairs_higher_than_du_et_al_ranks_random_pairs() {
    // On a planted-complex PPI dataset, the top pairs found by the
    // uncertainty-aware estimator should predominantly lie within complexes.
    let dataset = PpiGenerator {
        num_proteins: 200,
        num_complexes: 25,
        complex_size: (3, 5),
        noise_edges: 250,
        seed: 31,
        ..Default::default()
    }
    .generate();
    let graph = &dataset.graph;
    let config = SimRankConfig::default().with_samples(300).with_seed(31);
    let mut estimator = SpeedupEstimator::new(graph, config);
    // Candidate pairs: share at least one possible neighbor.
    let mut candidates = std::collections::HashSet::new();
    for w in graph.vertices() {
        let neighbors = graph.out_neighbors(w);
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                candidates.insert((a.min(b), a.max(b)));
            }
        }
    }
    let top = top_k_pairs(&mut estimator, candidates.iter().copied(), 15);
    let hits = top
        .iter()
        .filter(|scored| dataset.same_complex(scored.pair.0, scored.pair.1))
        .count();
    assert!(
        hits >= 10,
        "expected most of the top-15 pairs to be within a planted complex, got {hits}"
    );
}

#[test]
fn entity_resolution_pipeline_beats_trivial_clusterings() {
    let dataset = ErGenerator::small(77).generate();
    let algorithm = ErAlgorithm::new(ErAlgorithmKind::SimEr)
        .with_simrank_config(SimRankConfig::default().with_samples(300).with_seed(77));
    for group_index in 0..dataset.groups.len() {
        let records = dataset.records_of_group(group_index);
        let clustering = algorithm.cluster_group(&dataset.graph, &records);
        let quality = evaluate_clustering(&clustering, |a, b| dataset.same_author(a, b));
        // Better than both degenerate baselines: everything-in-one-cluster
        // (precision suffers) and all-singletons (recall = 0 -> F1 = 0).
        assert!(quality.f1 > 0.3, "group {group_index}: F1 = {}", quality.f1);
    }
}

#[test]
fn measures_disagree_on_uncertain_graphs_but_agree_on_certain_ones() {
    let graph = fig1_graph();
    let config = SimRankConfig::default();
    let baseline = BaselineEstimator::new(&graph, config);
    let mut du = DuEtAlEstimator::new(&graph, config);
    let mut simrank_gap: f64 = 0.0;
    for u in graph.vertices() {
        for v in graph.vertices() {
            simrank_gap = simrank_gap
                .max((baseline.try_similarity(u, v).unwrap() - du.similarity(u, v)).abs());
        }
    }
    assert!(
        simrank_gap > 1e-4,
        "Du et al. should differ under uncertainty"
    );

    let certain = graph.certain();
    let baseline_certain = BaselineEstimator::new(&certain, config);
    let mut du_certain = DuEtAlEstimator::new(&certain, config);
    for u in certain.vertices() {
        for v in certain.vertices() {
            let a = baseline_certain.try_similarity(u, v).unwrap();
            let b = du_certain.similarity(u, v);
            assert!(
                (a - b).abs() < 1e-9,
                "on a certain graph the measures coincide"
            );
        }
    }
}

#[test]
fn jaccard_is_zero_without_common_neighbors_but_simrank_is_not() {
    // The paper's motivation for SimRank: it assigns similarity to vertices
    // without common neighbors as long as their neighborhoods are similar.
    let graph = UncertainGraphBuilder::new(6)
        // u = 0 and v = 1 have distinct in-neighbors (2 and 3) which in turn
        // share an in-neighbor (4).
        .arc(2, 0, 0.9)
        .arc(3, 1, 0.9)
        .arc(4, 2, 0.8)
        .arc(4, 3, 0.8)
        .arc(5, 4, 0.7)
        .build()
        .unwrap();
    let jaccard = expected_jaccard(&graph, 0, 1, NeighborhoodMode::In);
    assert_eq!(jaccard, 0.0);
    let baseline = BaselineEstimator::new(&graph, SimRankConfig::default());
    let simrank = baseline.try_similarity(0, 1).unwrap();
    assert!(
        simrank > 0.05,
        "SimRank should see the two-hop structure, got {simrank}"
    );
}

#[test]
fn external_baseline_round_trips_through_the_column_store() {
    let graph = fig1_graph();
    let config = SimRankConfig::default().with_horizon(3);
    let directory = std::env::temp_dir().join(format!("usim_integration_{}", std::process::id()));
    let external =
        uncertain_simrank::simrank::ExternalBaseline::build(&graph, config, &directory, 1024)
            .unwrap();
    let in_memory = BaselineEstimator::new(&graph, config);
    for u in graph.vertices() {
        for v in graph.vertices() {
            let a = in_memory.try_similarity(u, v).unwrap();
            let b = external.profile(u, v).score();
            assert!((a - b).abs() < 1e-10);
        }
    }
    assert!(external.io_stats().columns_read > 0);
    external.delete().unwrap();
    std::fs::remove_dir_all(&directory).ok();
}
