//! Property-based tests for the caching layer: a [`CachedQueryEngine`] fed
//! an arbitrary interleaving of queries and valid update rounds must return
//! answers **bit-identical** to an uncached engine walking the same
//! interleaving — at 1 and N worker threads, under capacity pressure small
//! enough to force evictions mid-run, and with repeat-asks that are served
//! from the cache rather than recomputed.

use proptest::prelude::*;
use rayon::ThreadPoolBuilder;
use std::collections::BTreeMap;
use uncertain_simrank::graph::{DuplicatePolicy, GraphUpdate, UncertainGraph, VertexId};
use uncertain_simrank::prelude::*;

/// Strategy: a small uncertain graph (duplicates keep the max probability).
fn small_uncertain_graph(
    max_vertices: u32,
    max_arcs: usize,
) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            let arcs = proptest::collection::vec((0..n, 0..n, 0.05f64..1.0f64), 1..=max_arcs);
            (Just(n), arcs)
        })
        .prop_map(|(n, arcs)| {
            UncertainGraphBuilder::new(n as usize)
                .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
                .arcs(arcs)
                .build()
                .expect("strategy produces valid arcs")
        })
}

/// Abstract update op `(u, v, probability, kind)`, realised against the
/// live arc set so every generated [`GraphUpdate`] is valid (see
/// `dynamic_overlay_props.rs`, which pins the overlay side of this).
type AbstractOp = (u32, u32, f64, u8);

fn realize_round(
    num_vertices: u32,
    model: &mut BTreeMap<(VertexId, VertexId), f64>,
    ops: &[AbstractOp],
) -> Vec<GraphUpdate> {
    let mut updates = Vec::with_capacity(ops.len());
    for &(u, v, p, kind) in ops {
        let (source, target) = (u % num_vertices, v % num_vertices);
        match model.entry((source, target)) {
            std::collections::btree_map::Entry::Occupied(entry) => {
                if kind == 0 {
                    entry.remove();
                    updates.push(GraphUpdate::DeleteArc { source, target });
                } else {
                    *entry.into_mut() = p;
                    updates.push(GraphUpdate::SetProbability {
                        source,
                        target,
                        probability: p,
                    });
                }
            }
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(p);
                updates.push(GraphUpdate::InsertArc {
                    source,
                    target,
                    probability: p,
                });
            }
        }
    }
    updates
}

/// Strategy: a graph plus interleaved rounds, each one a query batch (with
/// duplicates likely, since pairs draw from a small id space) followed by a
/// stream of abstract update ops.
#[allow(clippy::type_complexity)]
fn graph_and_interleaving(
    max_vertices: u32,
    max_arcs: usize,
    max_rounds: usize,
) -> impl Strategy<Value = (UncertainGraph, Vec<(Vec<(u32, u32)>, Vec<AbstractOp>)>)> {
    small_uncertain_graph(max_vertices, max_arcs).prop_flat_map(move |g| {
        let n = g.num_vertices() as u32;
        let rounds = proptest::collection::vec(
            (
                proptest::collection::vec((0..n, 0..n), 1..=10),
                proptest::collection::vec((0u32..1000, 0u32..1000, 0.05f64..1.0f64, 0u8..3), 0..=8),
            ),
            1..=max_rounds,
        );
        (Just(g), rounds)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The heart of the subsystem: across an arbitrary interleaving of
    /// query batches and update rounds, every answer of the cached engine
    /// (asked twice — fill, then hit) equals the uncached engine bit for
    /// bit, and the final cache counters prove the cache actually served
    /// hits rather than silently recomputing.
    #[test]
    fn cached_equals_uncached_across_query_update_interleavings(
        input in graph_and_interleaving(8, 20, 5),
        seed in 0u64..1000,
        capacity in 1usize..48,
    ) {
        let (graph, rounds) = input;
        let config = SimRankConfig::default().with_samples(25).with_seed(seed);
        let cached = CachedQueryEngine::new(SharedQueryEngine::new(&graph, config), capacity);
        let uncached = QueryEngine::new(&graph, config);
        let mut uncached = uncached; // apply_updates needs &mut
        let mut model: BTreeMap<(VertexId, VertexId), f64> = graph
            .arcs()
            .map(|a| ((a.source, a.target), a.probability))
            .collect();
        let n = graph.num_vertices() as u32;

        for (round, (pairs, ops)) in rounds.iter().enumerate() {
            let expected = uncached.batch_similarities(pairs).unwrap();
            // Fill, then repeat: the second ask is served (partly) from the
            // cache and must not change a bit.
            let (epoch_a, got_a) = cached.batch_similarities(pairs).unwrap();
            let (epoch_b, got_b) = cached.batch_similarities(pairs).unwrap();
            prop_assert_eq!(epoch_a, round as u64, "epoch counts applied rounds");
            prop_assert_eq!(epoch_a, epoch_b);
            prop_assert_eq!(&got_a, &expected, "cached fill == uncached");
            prop_assert_eq!(&got_b, &expected, "cached hit == uncached");

            // Single-pair and profile paths share the same contract.
            let &(u, v) = pairs.first().unwrap();
            prop_assert_eq!(cached.similarity(u, v).unwrap().1, uncached.similarity(u, v));
            prop_assert_eq!(&cached.profile(u, v).unwrap().1, &uncached.profile(u, v));

            // Top-k ranks through cached scores; compare against the engine.
            let (_, top) = cached.batch_top_k(pairs, 3).unwrap();
            prop_assert_eq!(&top, &uncached.batch_top_k(pairs, 3).unwrap());

            // Apply the same update round to both engines.
            let updates = realize_round(n, &mut model, ops);
            let (_, new_epoch) = cached.apply_updates(&updates).unwrap();
            uncached.apply_updates(&updates).unwrap();
            prop_assert_eq!(new_epoch, round as u64 + 1);
        }

        // After the final round the cache answers for the mutated graph.
        let pairs: Vec<(VertexId, VertexId)> = (0..n).map(|v| (0, v)).collect();
        let (_, after) = cached.batch_similarities(&pairs).unwrap();
        prop_assert_eq!(&after, &uncached.batch_similarities(&pairs).unwrap());

        let stats = cached.cache_stats().unwrap();
        prop_assert!(stats.hits > 0, "repeat-asks must be served from the cache: {:?}", stats);
        prop_assert!(stats.entries <= capacity, "capacity bound violated: {:?}", stats);
    }

    /// Worker-count invariance survives the cache: a cached engine queried
    /// from a 1-thread pool and a 5-thread pool (cold cache each) returns
    /// the same bits, equal to the uncached reference.
    #[test]
    fn cached_answers_are_thread_count_invariant(
        input in graph_and_interleaving(8, 20, 3),
        seed in 0u64..1000,
        capacity in 1usize..32,
    ) {
        let (graph, rounds) = input;
        let config = SimRankConfig::default().with_samples(25).with_seed(seed);
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let many = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let cached_1 = CachedQueryEngine::new(SharedQueryEngine::new(&graph, config), capacity);
        let cached_n = CachedQueryEngine::new(SharedQueryEngine::new(&graph, config), capacity);
        let mut reference = QueryEngine::new(&graph, config);
        let mut model: BTreeMap<(VertexId, VertexId), f64> = graph
            .arcs()
            .map(|a| ((a.source, a.target), a.probability))
            .collect();
        let n = graph.num_vertices() as u32;

        for (pairs, ops) in &rounds {
            let expected = reference.batch_similarities(pairs).unwrap();
            let a = single.install(|| cached_1.batch_similarities(pairs).unwrap().1);
            let b = many.install(|| cached_n.batch_similarities(pairs).unwrap().1);
            prop_assert_eq!(&a, &expected, "1 thread == uncached");
            prop_assert_eq!(&b, &expected, "5 threads == uncached");
            // Second asks (cache-warm) from the *other* pool: a warm cache
            // filled at one thread count serves a pool of another.
            let a2 = many.install(|| cached_1.batch_similarities(pairs).unwrap().1);
            let b2 = single.install(|| cached_n.batch_similarities(pairs).unwrap().1);
            prop_assert_eq!(&a2, &expected);
            prop_assert_eq!(&b2, &expected);

            let updates = realize_round(n, &mut model, ops);
            cached_1.apply_updates(&updates).unwrap();
            cached_n.apply_updates(&updates).unwrap();
            reference.apply_updates(&updates).unwrap();
        }
    }

    /// Out-of-range ids stay typed errors through the cached path, even
    /// when parts of the batch are already cached, and never poison the
    /// cache for subsequent valid queries.
    #[test]
    fn cached_path_keeps_typed_errors(
        graph in small_uncertain_graph(8, 20),
        offset in 0u32..1000,
    ) {
        let n = graph.num_vertices();
        let bad = n as u32 + offset;
        let config = SimRankConfig::default().with_samples(10).with_seed(1);
        let cached = CachedQueryEngine::new(SharedQueryEngine::new(&graph, config), 16);
        let reference = QueryEngine::new(&graph, config);
        cached.similarity(0, 0).unwrap(); // (0, 0) is cached now
        let expected = uncertain_simrank::simrank::QueryError::VertexOutOfRange {
            vertex: bad,
            num_vertices: n,
        };
        prop_assert_eq!(
            cached.batch_similarities(&[(0, 0), (bad, 0)]).unwrap_err(),
            expected
        );
        prop_assert_eq!(cached.similarity(0, bad).unwrap_err(), expected);
        prop_assert_eq!(cached.profile(bad, 0).unwrap_err(), expected);
        prop_assert_eq!(cached.batch_top_k(&[(bad, bad)], 0).unwrap_err(), expected);
        prop_assert_eq!(
            cached.batch_top_k_similar_to(0, &[bad], 1).unwrap_err(),
            expected
        );
        // Still healthy — and still bit-identical.
        let pair = (0, 1 % n as u32);
        prop_assert_eq!(
            cached.batch_similarities(&[pair]).unwrap().1,
            reference.batch_similarities(&[pair]).unwrap()
        );
    }
}
