//! Property-based tests for the library extensions: the binary graph format
//! and the single-source estimator, driven by randomly generated uncertain
//! graphs.

use proptest::prelude::*;
use uncertain_simrank::graph::{binfmt, UncertainGraph};
use uncertain_simrank::prelude::*;
use uncertain_simrank::simrank::SingleSourceEstimator;

/// Strategy: a random uncertain graph with up to `max_vertices` vertices and
/// one arc candidate per ordered vertex pair kept with probability ~30%.
fn arbitrary_graph(max_vertices: usize) -> impl Strategy<Value = UncertainGraph> {
    (2usize..=max_vertices)
        .prop_flat_map(|n| {
            let arcs = proptest::collection::vec(
                (
                    0..n as u32,
                    0..n as u32,
                    0.01f64..=1.0f64,
                    proptest::bool::weighted(0.3),
                ),
                0..(n * n).min(64),
            );
            (Just(n), arcs)
        })
        .prop_map(|(n, candidates)| {
            let mut seen = std::collections::HashSet::new();
            let arcs: Vec<(u32, u32, f64)> = candidates
                .into_iter()
                .filter(|&(_, _, _, keep)| keep)
                .filter(|&(u, v, _, _)| seen.insert((u, v)))
                .map(|(u, v, p, _)| (u, v, p))
                .collect();
            UncertainGraph::from_arcs(n, arcs).expect("generated arcs are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binary_roundtrip_preserves_arbitrary_graphs(graph in arbitrary_graph(12)) {
        let mut buffer = Vec::new();
        binfmt::write_binary(&graph, &mut buffer).unwrap();
        let restored = binfmt::read_binary(buffer.as_slice()).unwrap();
        prop_assert_eq!(restored.num_vertices(), graph.num_vertices());
        prop_assert_eq!(restored.num_arcs(), graph.num_arcs());
        for arc in graph.arcs() {
            let p = restored.arc_probability(arc.source, arc.target);
            prop_assert_eq!(p, Some(arc.probability));
        }
    }

    #[test]
    fn binary_reader_never_panics_on_corrupted_input(
        graph in arbitrary_graph(8),
        flip_position in 0usize..200,
        flip_mask in 1u8..=255,
    ) {
        // Any single-byte corruption must be reported as an error (or, if it
        // lands beyond the buffer, leave the read untouched) — never a panic
        // and never a silently different graph.
        let mut buffer = Vec::new();
        binfmt::write_binary(&graph, &mut buffer).unwrap();
        let position = flip_position % buffer.len();
        let mut corrupted = buffer.clone();
        corrupted[position] ^= flip_mask;
        match binfmt::read_binary(corrupted.as_slice()) {
            Err(_) => {}
            Ok(restored) => {
                // The flip may hit a probability byte and still produce a valid
                // graph; the checksum makes this impossible, so reaching here
                // means the corrupted buffer equals the original.
                prop_assert_eq!(corrupted, buffer);
                prop_assert_eq!(restored.num_arcs(), graph.num_arcs());
            }
        }
    }

    #[test]
    fn single_source_scores_are_probability_like_on_arbitrary_graphs(
        graph in arbitrary_graph(10),
        seed in 0u64..1000,
    ) {
        let config = SimRankConfig::default()
            .with_horizon(3)
            .with_samples(60)
            .with_seed(seed);
        let mut estimator = SingleSourceEstimator::new(&graph, config);
        let source = 0u32;
        let result = estimator.query(source);
        prop_assert_eq!(result.num_vertices(), graph.num_vertices());
        // m(0) is the indicator of the source.
        prop_assert_eq!(result.meeting_probability(0, source), 1.0);
        for v in graph.vertices() {
            let score = result.similarity(v);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&score), "s(0,{}) = {}", v, score);
            for k in 0..=3usize {
                let m = result.meeting_probability(k, v);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
            }
        }
    }

    #[test]
    fn single_source_is_deterministic_per_seed_on_arbitrary_graphs(
        graph in arbitrary_graph(8),
        seed in 0u64..1000,
    ) {
        let config = SimRankConfig::default()
            .with_horizon(3)
            .with_samples(40)
            .with_seed(seed);
        let first = SingleSourceEstimator::new(&graph, config).query(0).similarities();
        let second = SingleSourceEstimator::new(&graph, config).query(0).similarities();
        prop_assert_eq!(first, second);
    }
}
