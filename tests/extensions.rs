//! Integration tests for the library extensions that go beyond the paper's
//! four single-pair estimators: single-source queries, parallel batch
//! helpers, and the binary graph format — exercised together across crates on
//! generated datasets, the way a downstream application would use them.

use uncertain_simrank::datasets::{CoauthorGenerator, PpiGenerator};
use uncertain_simrank::graph::binfmt;
use uncertain_simrank::prelude::*;
use uncertain_simrank::simrank::{
    par_mean_similarity, par_similarities, par_top_k_pairs, top_k_similar_to, SourceMode,
};

// Kept deliberately small and sparse: several tests below compare against the
// exact Baseline, whose cost grows like (average degree)^horizon per query,
// and the workspace test suite runs unoptimised.
fn small_ppi() -> UncertainGraph {
    PpiGenerator {
        num_proteins: 40,
        num_complexes: 7,
        complex_size: (3, 5),
        intra_complex_density: 0.6,
        noise_edges: 40,
        seed: 11,
        ..Default::default()
    }
    .generate()
    .graph
}

#[test]
fn single_source_agrees_with_single_pair_estimators_on_a_generated_graph() {
    let graph = small_ppi();
    let config = SimRankConfig::default()
        .with_horizon(4)
        .with_samples(2000)
        .with_seed(3);
    let baseline = BaselineEstimator::new(&graph, config);
    let mut single_source = SingleSourceEstimator::new(&graph, config);

    let source: VertexId = 5;
    let result = single_source.query(source);
    assert_eq!(result.num_vertices(), graph.num_vertices());

    // Compare against the exact Baseline on a handful of targets (the exact
    // estimator is too slow to compare every vertex at this sample count).
    for target in [0u32, 1, 6, 17, 33] {
        if let Ok(exact) = baseline.try_similarity(source, target) {
            let estimate = result.similarity(target);
            assert!(
                (exact - estimate).abs() < 0.06,
                "target {target}: exact {exact}, single-source {estimate}"
            );
        }
    }
}

#[test]
fn single_source_top_k_matches_pairwise_top_k_on_a_clustered_graph() {
    // On a strongly clustered graph the top-k sets produced by the one-pass
    // single-source query and by |V| pairwise SR-SP queries should agree on
    // most members (they estimate the same quantity).
    let graph = small_ppi();
    let config = SimRankConfig::default().with_samples(1000).with_seed(9);
    let source: VertexId = 2;
    let k = 5;

    let mut single_source = SingleSourceEstimator::new(&graph, config);
    let one_pass = single_source.query(source).top_k(k);

    let mut pairwise = SpeedupEstimator::new(&graph, config);
    let candidates: Vec<VertexId> = graph.vertices().collect();
    let per_pair = top_k_similar_to(&mut pairwise, source, candidates, k);

    let overlap = one_pass
        .iter()
        .filter(|a| per_pair.iter().any(|b| b.vertex == a.vertex))
        .count();
    assert!(
        overlap * 2 >= k,
        "single-source and pairwise top-{k} share only {overlap} vertices: {one_pass:?} vs {per_pair:?}"
    );
}

#[test]
fn exact_source_mode_reduces_to_the_baseline_rows() {
    // With SourceMode::Exact and a deterministic graph (all probabilities 1)
    // the meeting estimate for every step uses the exact source row, so the
    // estimate for a certain graph equals classic SimRank up to sampling
    // noise on the target side only.
    let graph = small_ppi().certain();
    let config = SimRankConfig::default()
        .with_horizon(4)
        .with_samples(800)
        .with_seed(21);
    let mut single = SingleSourceEstimator::new(&graph, config).with_source_mode(SourceMode::Exact);
    let baseline = BaselineEstimator::new(&graph, config);
    let result = single
        .try_query(4)
        .expect("certain graph stays within budget");
    for target in [0u32, 4, 10, 20] {
        let exact = baseline.try_similarity(4, target).unwrap();
        assert!(
            (exact - result.similarity(target)).abs() < 0.05,
            "target {target}"
        );
    }
}

#[test]
fn parallel_batch_queries_match_sequential_results() {
    let graph = small_ppi();
    let config = SimRankConfig::default().with_horizon(4);
    let pairs: Vec<(VertexId, VertexId)> = (0..20u32).map(|i| (i, (i * 7 + 3) % 40)).collect();

    let parallel = par_similarities(|| BaselineEstimator::new(&graph, config), &pairs);
    let mut sequential_estimator = BaselineEstimator::new(&graph, config);
    for (index, &(u, v)) in pairs.iter().enumerate() {
        let sequential = sequential_estimator.similarity(u, v);
        assert!(
            (parallel[index] - sequential).abs() < 1e-12,
            "pair ({u}, {v})"
        );
    }

    let mean = par_mean_similarity(|| BaselineEstimator::new(&graph, config), &pairs);
    let expected: f64 = parallel.iter().sum::<f64>() / parallel.len() as f64;
    assert!((mean - expected).abs() < 1e-12);
}

#[test]
fn parallel_top_k_pairs_finds_the_planted_complex_pairs() {
    let dataset = PpiGenerator {
        num_proteins: 40,
        num_complexes: 6,
        complex_size: (3, 5),
        intra_complex_density: 0.9,
        noise_edges: 30,
        seed: 17,
        ..Default::default()
    }
    .generate();
    let graph = &dataset.graph;
    let config = SimRankConfig::default().with_samples(300).with_seed(2);

    let candidates: Vec<(VertexId, VertexId)> = (0..graph.num_vertices() as VertexId)
        .flat_map(|u| ((u + 1)..graph.num_vertices() as VertexId).map(move |v| (u, v)))
        .collect();
    let top = par_top_k_pairs(|| TwoPhaseEstimator::new(graph, config), &candidates, 10);
    assert_eq!(top.len(), 10);
    let in_complex = top
        .iter()
        .filter(|p| dataset.same_complex(p.pair.0, p.pair.1))
        .count();
    assert!(
        in_complex >= 6,
        "only {in_complex}/10 of the top pairs lie in a planted complex"
    );
}

#[test]
fn binary_format_round_trips_generated_datasets_and_preserves_similarities() {
    let graph = CoauthorGenerator::small(23).generate();
    let path = std::env::temp_dir().join(format!("usim_extensions_{}.bin", std::process::id()));
    binfmt::write_binary_file(&graph, &path).unwrap();
    let restored = binfmt::read_binary_file(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    assert_eq!(graph.num_vertices(), restored.num_vertices());
    assert_eq!(graph.num_arcs(), restored.num_arcs());

    // SimRank computed on the restored graph is bit-identical: same topology,
    // same probabilities, same seeds.
    let config = SimRankConfig::default().with_samples(300).with_seed(8);
    let mut original_estimator = SpeedupEstimator::new(&graph, config);
    let mut restored_estimator = SpeedupEstimator::new(&restored, config);
    for (u, v) in [(0u32, 1u32), (3, 9), (12, 30)] {
        assert_eq!(
            original_estimator.similarity(u, v),
            restored_estimator.similarity(u, v),
            "pair ({u}, {v})"
        );
    }
}
