//! Property-based tests for the alias sampler backend under churn: after an
//! arbitrary valid update stream, an engine running [`SamplerKind::Alias`]
//! (whose overlay rebuilt alias rows only for the patched vertices) must
//! answer batch queries bit-identically to a from-scratch engine that built
//! every alias table fresh on the mutated graph — at 1 and at 4 rayon
//! threads, with batch == sequential along the way.

use proptest::prelude::*;
use rayon::ThreadPoolBuilder;
use std::collections::BTreeMap;
use uncertain_simrank::graph::{
    DuplicatePolicy, GraphUpdate, UncertainGraph, UncertainGraphBuilder, VertexId,
};
use uncertain_simrank::simrank::{QueryEngine, SamplerKind, SimRankConfig};

/// Strategy: a small uncertain graph (duplicates keep the max probability).
fn small_uncertain_graph(
    max_vertices: u32,
    max_arcs: usize,
) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            let arcs = proptest::collection::vec((0..n, 0..n, 0.05f64..1.0f64), 1..=max_arcs);
            (Just(n), arcs)
        })
        .prop_map(|(n, arcs)| {
            UncertainGraphBuilder::new(n as usize)
                .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
                .arcs(arcs)
                .build()
                .expect("strategy produces valid arcs")
        })
}

/// Abstract update op: `(u, v, probability, kind)`, translated against the
/// current arc set so every generated [`GraphUpdate`] is valid (absent arcs
/// are inserted; present arcs are deleted for kind 0, re-weighted otherwise).
type AbstractOp = (u32, u32, f64, u8);

fn realize_updates(
    graph: &UncertainGraph,
    ops: &[AbstractOp],
) -> (Vec<GraphUpdate>, BTreeMap<(VertexId, VertexId), f64>) {
    let n = graph.num_vertices() as u32;
    let mut model: BTreeMap<(VertexId, VertexId), f64> = graph
        .arcs()
        .map(|a| ((a.source, a.target), a.probability))
        .collect();
    let mut updates = Vec::with_capacity(ops.len());
    for &(u, v, p, kind) in ops {
        let (source, target) = (u % n, v % n);
        match model.entry((source, target)) {
            std::collections::btree_map::Entry::Occupied(entry) => {
                if kind == 0 {
                    entry.remove();
                    updates.push(GraphUpdate::DeleteArc { source, target });
                } else {
                    *entry.into_mut() = p;
                    updates.push(GraphUpdate::SetProbability {
                        source,
                        target,
                        probability: p,
                    });
                }
            }
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(p);
                updates.push(GraphUpdate::InsertArc {
                    source,
                    target,
                    probability: p,
                });
            }
        }
    }
    (updates, model)
}

fn model_graph(num_vertices: usize, model: &BTreeMap<(VertexId, VertexId), f64>) -> UncertainGraph {
    UncertainGraph::from_arcs(num_vertices, model.iter().map(|(&(u, v), &p)| (u, v, p)))
        .expect("model arcs are valid")
}

/// Strategy: a graph plus a stream of abstract ops over its vertices.
fn graph_and_ops(
    max_vertices: u32,
    max_arcs: usize,
    max_ops: usize,
) -> impl Strategy<Value = (UncertainGraph, Vec<AbstractOp>)> {
    small_uncertain_graph(max_vertices, max_arcs).prop_flat_map(move |g| {
        let ops = proptest::collection::vec(
            (0u32..1000, 0u32..1000, 0.05f64..1.0f64, 0u8..3),
            0..=max_ops,
        );
        (Just(g), ops)
    })
}

/// Strategy: a list of query pairs over `n` vertices.
fn pairs_over(n: u32, max_pairs: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    proptest::collection::vec((0..n, 0..n), 1..=max_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The core churn invariant of the alias backend: batch answers after
    /// `apply_updates` (which rebuilds alias rows only for the update
    /// endpoints) are bit-identical to those of a from-scratch engine whose
    /// alias tables were all built fresh on the mutated graph, at 1 and at
    /// 4 threads, with batch == sequential throughout.
    #[test]
    fn alias_answers_after_churn_match_a_fresh_rebuild_at_1_and_4_threads(
        input in graph_and_ops(8, 20, 24)
            .prop_flat_map(|(g, ops)| {
                let n = g.num_vertices() as u32;
                (Just(g), Just(ops), pairs_over(n, 12))
            }),
        seed in 0u64..1000,
    ) {
        let (graph, ops, pairs) = input;
        let (updates, model) = realize_updates(&graph, &ops);
        let config = SimRankConfig::default()
            .with_samples(30)
            .with_seed(seed)
            .with_sampler(SamplerKind::Alias);
        let mut engine = QueryEngine::new(&graph, config);
        engine.apply_updates(&updates).expect("realized updates are valid");

        let batch = engine.batch_similarities(&pairs).unwrap();
        let sequential: Vec<f64> =
            pairs.iter().map(|&(u, v)| engine.similarity(u, v)).collect();
        prop_assert_eq!(&batch, &sequential, "alias batch == sequential after updates");

        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let four = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let a = single.install(|| engine.batch_similarities(&pairs).unwrap());
        let b = four.install(|| engine.batch_similarities(&pairs).unwrap());
        prop_assert_eq!(&a, &b, "alias: 1 thread == 4 threads after updates");
        prop_assert_eq!(&a, &batch);

        // Partial table rebuild is indistinguishable from a full one.
        let fresh = QueryEngine::new(
            &model_graph(graph.num_vertices(), &model),
            config,
        );
        let fresh_batch = single.install(|| fresh.batch_similarities(&pairs).unwrap());
        prop_assert_eq!(&batch, &fresh_batch, "patched alias rows == fresh tables");
        let fresh_batch_4 = four.install(|| fresh.batch_similarities(&pairs).unwrap());
        prop_assert_eq!(&batch, &fresh_batch_4);
    }

    /// Alias profiles survive churn identically too, and the per-pair RNG
    /// streams keep repeated queries bit-equal on the mutated engine.
    #[test]
    fn alias_profiles_after_churn_are_replayable_and_match_rebuild(
        input in graph_and_ops(6, 14, 16)
            .prop_flat_map(|(g, ops)| {
                let n = g.num_vertices() as u32;
                (Just(g), Just(ops), pairs_over(n, 6))
            }),
        seed in 0u64..1000,
    ) {
        let (graph, ops, pairs) = input;
        let (updates, model) = realize_updates(&graph, &ops);
        let config = SimRankConfig::default()
            .with_samples(20)
            .with_seed(seed)
            .with_sampler(SamplerKind::Alias);
        let mut engine = QueryEngine::new(&graph, config);
        engine.apply_updates(&updates).expect("valid");
        let fresh = QueryEngine::new(&model_graph(graph.num_vertices(), &model), config);

        let profiles = engine.batch_profile(&pairs).unwrap();
        prop_assert_eq!(&profiles, &fresh.batch_profile(&pairs).unwrap());
        for (profile, &(u, v)) in profiles.iter().zip(&pairs) {
            prop_assert_eq!(profile, &engine.profile(u, v), "replayable stream");
        }
    }
}
