//! Property-based tests for the sharded scatter-gather engine: for pairs
//! deliberately straddling shard boundaries, a K-shard
//! [`ShardedQueryEngine`] must answer batch and top-k queries bit-identical
//! to the K=1 engine — with 1 and with 4 pinned worker threads per shard —
//! and the identity must survive an `apply_updates` round applied to every
//! engine in lockstep.

use proptest::prelude::*;
use std::collections::BTreeMap;
use uncertain_simrank::graph::{DuplicatePolicy, GraphUpdate, UncertainGraph, VertexId};
use uncertain_simrank::prelude::*;

/// Strategy: a small uncertain graph (duplicates keep the max probability).
fn small_uncertain_graph(
    max_vertices: u32,
    max_arcs: usize,
) -> impl Strategy<Value = UncertainGraph> {
    (4..=max_vertices)
        .prop_flat_map(move |n| {
            let arcs = proptest::collection::vec((0..n, 0..n, 0.05f64..1.0f64), 1..=max_arcs);
            (Just(n), arcs)
        })
        .prop_map(|(n, arcs)| {
            UncertainGraphBuilder::new(n as usize)
                .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
                .arcs(arcs)
                .build()
                .expect("strategy produces valid arcs")
        })
}

/// Abstract update op `(u, v, probability, kind)`, translated against the
/// current arc set so every generated [`GraphUpdate`] is valid.
type AbstractOp = (u32, u32, f64, u8);

fn realize_updates(graph: &UncertainGraph, ops: &[AbstractOp]) -> Vec<GraphUpdate> {
    let n = graph.num_vertices() as u32;
    let mut model: BTreeMap<(VertexId, VertexId), f64> = graph
        .arcs()
        .map(|a| ((a.source, a.target), a.probability))
        .collect();
    let mut updates = Vec::with_capacity(ops.len());
    for &(u, v, p, kind) in ops {
        let (source, target) = (u % n, v % n);
        match model.entry((source, target)) {
            std::collections::btree_map::Entry::Occupied(entry) => {
                if kind == 0 {
                    entry.remove();
                    updates.push(GraphUpdate::DeleteArc { source, target });
                } else {
                    *entry.into_mut() = p;
                    updates.push(GraphUpdate::SetProbability {
                        source,
                        target,
                        probability: p,
                    });
                }
            }
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(p);
                updates.push(GraphUpdate::InsertArc {
                    source,
                    target,
                    probability: p,
                });
            }
        }
    }
    updates
}

/// Every pair `(b - 1, b)` across the interior shard cut points of an
/// n-vertex space split into `shards` — by construction each one has its
/// endpoints in two different shards (cut points are `s * n / shards`).
fn boundary_straddling_pairs(n: usize, shards: usize) -> Vec<(VertexId, VertexId)> {
    (1..shards)
        .map(|s| s * n / shards)
        .filter(|&b| b > 0 && b < n)
        .flat_map(|b| {
            let lo = (b - 1) as VertexId;
            let hi = b as VertexId;
            // Both orientations: routing keys off min(u, v), answers must
            // not depend on which side of the cut comes first.
            [(lo, hi), (hi, lo)]
        })
        .collect()
}

/// A graph, an update round over its vertices, random extra pairs, and a
/// shard count.
fn sharded_case() -> impl Strategy<Value = (UncertainGraph, Vec<AbstractOp>, Vec<(u32, u32)>, usize)>
{
    small_uncertain_graph(12, 30).prop_flat_map(|g| {
        let n = g.num_vertices() as u32;
        let ops =
            proptest::collection::vec((0u32..1000, 0u32..1000, 0.05f64..1.0f64, 0u8..3), 1..=16);
        let pairs = proptest::collection::vec((0..n, 0..n), 1..=8);
        (Just(g), ops, pairs, 2usize..=5)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batch and top-k answers for boundary-straddling pairs are
    /// bit-identical between K shards and K=1, at 1 and 4 pinned worker
    /// threads per shard, before and after an update round applied to every
    /// engine in lockstep.
    #[test]
    fn straddling_pairs_match_k1_at_1_and_4_threads(
        case in sharded_case(),
        seed in 0u64..1000,
    ) {
        let (graph, ops, extra, shards) = case;
        let n = graph.num_vertices();
        let config = SimRankConfig::default().with_samples(25).with_seed(seed);

        let mut pairs = boundary_straddling_pairs(n, shards);
        pairs.extend(extra);

        let reference = ShardedQueryEngine::new(&graph, config, ShardSpec::with_shards(1));
        let engines: Vec<ShardedQueryEngine> = [1usize, 4]
            .iter()
            .map(|&threads| {
                ShardedQueryEngine::new(
                    &graph,
                    config,
                    ShardSpec {
                        shards,
                        threads_per_shard: threads,
                        cache_capacity: 0,
                    },
                )
            })
            .collect();

        // Sanity: the straddling pairs do straddle.
        for &(u, v) in &boundary_straddling_pairs(n, shards) {
            prop_assert_ne!(engines[0].shard_of(u), engines[0].shard_of(v));
        }

        let updates = realize_updates(&graph, &ops);
        for round in 0..2 {
            let (ref_epoch, ref_scores) = reference.batch_similarities(&pairs).unwrap();
            let (_, ref_ranked) = reference.batch_top_k(&pairs, 5).unwrap();
            for engine in &engines {
                let (epoch, scores) = engine.batch_similarities(&pairs).unwrap();
                prop_assert_eq!(epoch, ref_epoch, "round {}", round);
                prop_assert_eq!(&scores, &ref_scores, "round {}", round);
                let (_, ranked) = engine.batch_top_k(&pairs, 5).unwrap();
                prop_assert_eq!(&ranked, &ref_ranked, "round {}", round);
            }
            if round == 0 {
                let (_, epoch) = reference.apply_updates(&updates).unwrap();
                for engine in &engines {
                    let (_, e) = engine.apply_updates(&updates).unwrap();
                    prop_assert_eq!(e, epoch);
                }
            }
        }
    }

    /// Single-pair queries routed to the owning shard agree with the K=1
    /// engine for every vertex pair adjacent to a shard cut point.
    #[test]
    fn boundary_similarity_and_topk_candidates_match_k1(
        graph in small_uncertain_graph(10, 24),
        shards in 2usize..=4,
        seed in 0u64..1000,
    ) {
        let n = graph.num_vertices();
        let config = SimRankConfig::default().with_samples(25).with_seed(seed);
        let reference = ShardedQueryEngine::new(&graph, config, ShardSpec::with_shards(1));
        let sharded = ShardedQueryEngine::new(&graph, config, ShardSpec::with_shards(shards));

        let candidates: Vec<VertexId> = (0..n as VertexId).collect();
        for (u, v) in boundary_straddling_pairs(n, shards) {
            prop_assert_eq!(
                sharded.similarity(u, v).unwrap(),
                reference.similarity(u, v).unwrap()
            );
            prop_assert_eq!(
                sharded.batch_top_k_similar_to(u, &candidates, 3).unwrap(),
                reference.batch_top_k_similar_to(u, &candidates, 3).unwrap()
            );
        }
    }
}
