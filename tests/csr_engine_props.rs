//! Property-based tests for the CSR fast path and the batch query engine:
//! [`CsrGraph`] must round-trip arbitrary graphs exactly (degrees, neighbor
//! slices, transpose view), and [`QueryEngine`] batch results must equal the
//! sequential per-pair estimates bit-for-bit under a fixed seed, at any
//! thread count.

use proptest::prelude::*;
use rayon::ThreadPoolBuilder;
use uncertain_simrank::graph::{CsrGraph, DiGraph, DuplicatePolicy, VertexId};
use uncertain_simrank::prelude::*;
use uncertain_simrank::simrank::QueryEngine;

/// Strategy: a small deterministic graph with up to `max_vertices` vertices
/// and up to `max_arcs` random arcs (duplicates collapsed).
fn small_digraph(max_vertices: u32, max_arcs: usize) -> impl Strategy<Value = DiGraph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            let arcs = proptest::collection::vec((0..n, 0..n), 0..=max_arcs);
            (Just(n), arcs)
        })
        .prop_map(|(n, arcs)| {
            let unique: std::collections::BTreeSet<(VertexId, VertexId)> =
                arcs.into_iter().collect();
            DiGraph::from_arcs(n as usize, unique).expect("strategy produces valid arcs")
        })
}

/// Strategy: a small uncertain graph (duplicates keep the max probability).
fn small_uncertain_graph(
    max_vertices: u32,
    max_arcs: usize,
) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            let arcs = proptest::collection::vec((0..n, 0..n, 0.05f64..1.0f64), 1..=max_arcs);
            (Just(n), arcs)
        })
        .prop_map(|(n, arcs)| {
            UncertainGraphBuilder::new(n as usize)
                .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
                .arcs(arcs)
                .build()
                .expect("strategy produces valid arcs")
        })
}

/// Strategy: a list of query pairs over `n` vertices.
fn pairs_over(n: u32, max_pairs: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    proptest::collection::vec((0..n, 0..n), 1..=max_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CsrGraph round-trips an arbitrary DiGraph: per-vertex degrees and
    /// sorted neighbor slices in both directions, and the reverse view is
    /// exactly the forward view of the transposed graph.
    #[test]
    fn csr_roundtrips_arbitrary_digraphs(graph in small_digraph(12, 40)) {
        let csr = CsrGraph::from_digraph(&graph);
        prop_assert_eq!(csr.num_vertices(), graph.num_vertices());
        prop_assert_eq!(csr.num_arcs(), graph.num_arcs());
        let forward = csr.forward();
        let reverse = csr.reverse();
        for v in graph.vertices() {
            prop_assert_eq!(forward.neighbors(v), graph.out_neighbors(v));
            prop_assert_eq!(reverse.neighbors(v), graph.in_neighbors(v));
            prop_assert_eq!(forward.degree(v), graph.out_degree(v));
            prop_assert_eq!(reverse.degree(v), graph.in_degree(v));
            prop_assert!(forward.neighbors(v).windows(2).all(|w| w[0] < w[1]));
            prop_assert!(reverse.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
        // Arc membership agrees with the graph's binary-search lookup, in
        // both directions.
        for u in graph.vertices() {
            for v in graph.vertices() {
                prop_assert_eq!(forward.has_arc(u, v), graph.has_arc(u, v));
                prop_assert_eq!(reverse.has_arc(v, u), graph.has_arc(u, v));
            }
        }
        // The reverse view is the transpose's forward view.
        let transposed = CsrGraph::from_digraph(&graph.transpose());
        for v in graph.vertices() {
            prop_assert_eq!(reverse.neighbors(v), transposed.forward().neighbors(v));
        }
    }

    /// CsrGraph round-trips an arbitrary UncertainGraph including the
    /// probability arrays, and both views stay aligned with their targets.
    #[test]
    fn csr_roundtrips_arbitrary_uncertain_graphs(graph in small_uncertain_graph(10, 30)) {
        let csr = CsrGraph::from_uncertain(&graph);
        prop_assert_eq!(csr.num_arcs(), graph.num_arcs());
        let forward = csr.forward();
        let reverse = csr.reverse();
        for v in graph.vertices() {
            let (out_nbrs, out_probs) = graph.out_arcs(v);
            prop_assert_eq!(forward.neighbors(v), out_nbrs);
            prop_assert_eq!(forward.probabilities(v), out_probs);
            let (in_nbrs, in_probs) = graph.in_arcs(v);
            prop_assert_eq!(reverse.neighbors(v), in_nbrs);
            prop_assert_eq!(reverse.probabilities(v), in_probs);
        }
        for arc in graph.arcs() {
            prop_assert_eq!(forward.arc_probability(arc.source, arc.target), Some(arc.probability));
            prop_assert_eq!(reverse.arc_probability(arc.target, arc.source), Some(arc.probability));
        }
    }

    /// Batch results equal the sequential per-pair estimates bit-for-bit
    /// under a fixed seed: scores, profiles and repeated queries.
    #[test]
    fn batch_equals_sequential_bit_for_bit(
        input in small_uncertain_graph(10, 30)
            .prop_flat_map(|g| {
                let n = g.num_vertices() as u32;
                (Just(g), pairs_over(n, 12))
            }),
        seed in 0u64..1000,
    ) {
        let (graph, pairs) = input;
        let config = SimRankConfig::default().with_samples(40).with_seed(seed);
        let engine = QueryEngine::new(&graph, config);
        let batch = engine.batch_similarities(&pairs).unwrap();
        let sequential: Vec<f64> = pairs.iter().map(|&(u, v)| engine.similarity(u, v)).collect();
        prop_assert_eq!(batch, sequential);
        let profiles = engine.batch_profile(&pairs).unwrap();
        for (profile, &(u, v)) in profiles.iter().zip(&pairs) {
            prop_assert_eq!(profile, &engine.profile(u, v));
        }
    }

    /// The number of rayon threads is invisible in batch output: 1 worker
    /// and 5 workers produce bit-identical score vectors.
    #[test]
    fn batch_is_thread_count_invariant(
        input in small_uncertain_graph(8, 24)
            .prop_flat_map(|g| {
                let n = g.num_vertices() as u32;
                (Just(g), pairs_over(n, 16))
            }),
        seed in 0u64..1000,
    ) {
        let (graph, pairs) = input;
        let config = SimRankConfig::default().with_samples(30).with_seed(seed);
        let engine = QueryEngine::new(&graph, config);
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let many = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let a = single.install(|| engine.batch_similarities(&pairs).unwrap());
        let b = many.install(|| engine.batch_similarities(&pairs).unwrap());
        prop_assert_eq!(a, b);
    }
}
