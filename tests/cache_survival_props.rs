//! Property-based tests for footprint-based cache survival: across random
//! update rounds, every answer a [`CachedQueryEngine`] serves — including
//! hits from entries that *survived* a round via disjoint-footprint
//! revalidation — must be bit-identical to recomputation on a **fresh
//! engine** built from scratch on the final graph state.  Checked at 1 and
//! 4 worker threads, on both the legacy and the alias sampler backend.
//!
//! The fresh-engine comparison is the strongest possible oracle: it cannot
//! share any state with the cached engine, so a survivor whose answer
//! secretly depended on an updated vertex would be caught as a bit
//! mismatch.

use proptest::prelude::*;
use rayon::ThreadPoolBuilder;
use std::collections::BTreeMap;
use uncertain_simrank::graph::{DuplicatePolicy, GraphUpdate, UncertainGraph, VertexId};
use uncertain_simrank::prelude::*;

/// Strategy: a small uncertain graph (duplicates keep the max probability).
fn small_uncertain_graph(
    max_vertices: u32,
    max_arcs: usize,
) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            let arcs = proptest::collection::vec((0..n, 0..n, 0.05f64..1.0f64), 1..=max_arcs);
            (Just(n), arcs)
        })
        .prop_map(|(n, arcs)| {
            UncertainGraphBuilder::new(n as usize)
                .duplicate_policy(DuplicatePolicy::KeepMaxProbability)
                .arcs(arcs)
                .build()
                .expect("strategy produces valid arcs")
        })
}

/// Abstract update op `(u, v, probability, kind)`, realised against the
/// live arc set so every generated [`GraphUpdate`] is valid (same scheme as
/// `cache_props.rs` / `dynamic_overlay_props.rs`).
type AbstractOp = (u32, u32, f64, u8);

fn realize_round(
    num_vertices: u32,
    model: &mut BTreeMap<(VertexId, VertexId), f64>,
    ops: &[AbstractOp],
) -> Vec<GraphUpdate> {
    let mut updates = Vec::with_capacity(ops.len());
    for &(u, v, p, kind) in ops {
        let (source, target) = (u % num_vertices, v % num_vertices);
        match model.entry((source, target)) {
            std::collections::btree_map::Entry::Occupied(entry) => {
                if kind == 0 {
                    entry.remove();
                    updates.push(GraphUpdate::DeleteArc { source, target });
                } else {
                    *entry.into_mut() = p;
                    updates.push(GraphUpdate::SetProbability {
                        source,
                        target,
                        probability: p,
                    });
                }
            }
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(p);
                updates.push(GraphUpdate::InsertArc {
                    source,
                    target,
                    probability: p,
                });
            }
        }
    }
    updates
}

/// Rebuilds the model's arc set as a standalone graph: the ground truth a
/// fresh engine is built on.
fn graph_of_model(
    num_vertices: usize,
    model: &BTreeMap<(VertexId, VertexId), f64>,
) -> UncertainGraph {
    UncertainGraphBuilder::new(num_vertices)
        .arcs(model.iter().map(|(&(u, v), &p)| (u, v, p)))
        .build()
        .expect("model arcs are valid by construction")
}

/// Drives `rounds` of (query batch, update round) through a cached engine,
/// then checks every queried pair — whatever mix of survivors, re-stamped
/// hits and recomputes is in the cache by then — against a fresh engine
/// built on the final graph.  Runs the query side inside `pool`.
#[allow(clippy::type_complexity)]
fn check_survivors_against_fresh_engine(
    graph: &UncertainGraph,
    rounds: &[(Vec<(u32, u32)>, Vec<AbstractOp>)],
    config: SimRankConfig,
    capacity: usize,
    threads: usize,
) {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    let cached = CachedQueryEngine::new(SharedQueryEngine::new(graph, config), capacity);
    let mut model: BTreeMap<(VertexId, VertexId), f64> = graph
        .arcs()
        .map(|a| ((a.source, a.target), a.probability))
        .collect();
    let n = graph.num_vertices() as u32;

    let mut all_pairs: Vec<(u32, u32)> = Vec::new();
    for (pairs, ops) in rounds {
        // Fill the cache (and exercise hits) at this epoch.
        pool.install(|| cached.batch_similarities(pairs)).unwrap();
        pool.install(|| cached.batch_similarities(pairs)).unwrap();
        all_pairs.extend_from_slice(pairs);
        let updates = realize_round(n, &mut model, ops);
        cached.apply_updates(&updates).unwrap();
    }

    // Every pair ever queried, asked at the final epoch: survivors of the
    // last round(s) answer from the cache, everything else recomputes.
    all_pairs.sort_unstable();
    all_pairs.dedup();
    let (_, got) = pool
        .install(|| cached.batch_similarities(&all_pairs))
        .unwrap();

    // The oracle shares nothing with the cached engine: a fresh graph from
    // the model, a fresh engine, no updates ever applied.
    let fresh = QueryEngine::new(&graph_of_model(n as usize, &model), config);
    let expected = fresh.batch_similarities(&all_pairs).unwrap();
    prop_assert_eq!(
        &got,
        &expected,
        "cached answers (incl. survivors) diverge from a fresh engine at {} threads / {:?}",
        threads,
        config.sampler
    );
    let stats = cached.cache_stats().unwrap();
    prop_assert!(
        stats.survived + stats.killed > 0,
        "update rounds must have revalidated something: {:?}",
        stats
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole property, legacy sampler: survivors of arbitrary update
    /// churn are bit-identical to fresh recomputation, at 1 and 4 threads.
    #[test]
    fn survivors_match_fresh_engine_legacy_sampler(
        input in small_uncertain_graph(8, 20).prop_flat_map(|g| {
            let n = g.num_vertices() as u32;
            let rounds = proptest::collection::vec(
                (
                    proptest::collection::vec((0..n, 0..n), 1..=8),
                    proptest::collection::vec(
                        (0u32..1000, 0u32..1000, 0.05f64..1.0f64, 0u8..3),
                        0..=6,
                    ),
                ),
                1..=4,
            );
            (Just(g), rounds)
        }),
        seed in 0u64..1000,
        capacity in 4usize..64,
    ) {
        let (graph, rounds) = input;
        let config = SimRankConfig::default()
            .with_samples(25)
            .with_seed(seed)
            .with_sampler(SamplerKind::Legacy);
        for threads in [1usize, 4] {
            check_survivors_against_fresh_engine(&graph, &rounds, config, capacity, threads);
        }
    }

    /// The same property on the alias-table backend: footprint capture and
    /// revalidation are sampler-agnostic.
    #[test]
    fn survivors_match_fresh_engine_alias_sampler(
        input in small_uncertain_graph(8, 20).prop_flat_map(|g| {
            let n = g.num_vertices() as u32;
            let rounds = proptest::collection::vec(
                (
                    proptest::collection::vec((0..n, 0..n), 1..=8),
                    proptest::collection::vec(
                        (0u32..1000, 0u32..1000, 0.05f64..1.0f64, 0u8..3),
                        0..=6,
                    ),
                ),
                1..=4,
            );
            (Just(g), rounds)
        }),
        seed in 0u64..1000,
        capacity in 4usize..64,
    ) {
        let (graph, rounds) = input;
        let config = SimRankConfig::default()
            .with_samples(25)
            .with_seed(seed)
            .with_sampler(SamplerKind::Alias);
        for threads in [1usize, 4] {
            check_survivors_against_fresh_engine(&graph, &rounds, config, capacity, threads);
        }
    }
}

/// Deterministic companion: on a two-component graph with updates confined
/// to one component, entries in the other *must* survive (survived > 0,
/// killed == 0) and their hits must equal fresh recomputation — on both
/// samplers, at 1 and 4 threads.
#[test]
fn disjoint_updates_yield_guaranteed_survivors_on_both_samplers() {
    let graph = UncertainGraphBuilder::new(6)
        .arc(2, 0, 0.9)
        .arc(2, 1, 0.8)
        .arc(1, 0, 0.7)
        .arc(5, 3, 0.9)
        .arc(5, 4, 0.8)
        .build()
        .unwrap();
    let pairs = [(0u32, 1u32), (0, 2), (1, 2)];
    let updates = [GraphUpdate::SetProbability {
        source: 5,
        target: 3,
        probability: 0.2,
    }];
    for sampler in [SamplerKind::Legacy, SamplerKind::Alias] {
        let config = SimRankConfig::default()
            .with_samples(100)
            .with_seed(13)
            .with_sampler(sampler);
        for threads in [1usize, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let cached = CachedQueryEngine::new(SharedQueryEngine::new(&graph, config), 64);
            let (_, before) = pool.install(|| cached.batch_similarities(&pairs)).unwrap();
            cached.apply_updates(&updates).unwrap();
            let stats = cached.cache_stats().unwrap();
            assert_eq!(
                (stats.survived, stats.killed),
                (pairs.len() as u64, 0),
                "{sampler:?} at {threads} threads: {stats:?}"
            );
            let misses_before = stats.misses;
            let (_, after) = pool.install(|| cached.batch_similarities(&pairs)).unwrap();
            assert_eq!(after, before, "{sampler:?} at {threads} threads");
            assert_eq!(
                cached.cache_stats().unwrap().misses,
                misses_before,
                "survivors must serve the repeat ask without recomputing"
            );
            // Fresh-engine oracle on the updated graph.
            let updated = UncertainGraphBuilder::new(6)
                .arc(2, 0, 0.9)
                .arc(2, 1, 0.8)
                .arc(1, 0, 0.7)
                .arc(5, 3, 0.2)
                .arc(5, 4, 0.8)
                .build()
                .unwrap();
            let fresh = QueryEngine::new(&updated, config);
            assert_eq!(after, fresh.batch_similarities(&pairs).unwrap());
        }
    }
}
